// Package telemetry is the study's live observability layer: a concurrent
// metrics registry (counters, gauges, fixed-bucket histograms), a bounded
// flight-recorder trace ring, and an embeddable HTTP server that exposes
// both — plus the live profiler and the harness's in-flight cell state —
// while a sweep is running.
//
// The package follows the nil-Tracer discipline established by
// internal/obsv: every instrument method is defined on a pointer receiver
// and begins with a nil check, so a VM or harness built without telemetry
// pays ~one predictable branch per hook site and zero allocations. A nil
// *Registry hands out nil instruments, which propagates the disabled fast
// path through whole instrument bundles.
//
// Hot paths are lock-free. Integer-valued updates are single atomic adds;
// float-valued accumulators (virtual cycles are float64) use a
// compare-and-swap with striped overflow cells: the first CAS failure —
// the contention signal — diverts the update to one of several
// cache-line-padded cells chosen from the failed value's bits, the
// LongAdder pattern. Reads sum the stripes; a scrape can therefore tear
// across stripes but each stripe is itself atomic and monotonicity is
// preserved for counters.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// nStripes is the stripe count of float accumulators. Eight 64-byte-padded
// cells cover the harness's worker-pool parallelism (default ≤ 8 workers)
// without false sharing.
const nStripes = 8

// stripe is one cache-line-padded atomic float64 cell.
type stripe struct {
	bits atomic.Uint64
	_    [7]uint64 // pad to 64 bytes so neighboring stripes don't false-share
}

// tryAdd attempts a single CAS add; false signals contention.
func (s *stripe) tryAdd(d float64) bool {
	old := s.bits.Load()
	return s.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d))
}

// addSpin retries the CAS until it lands (used once an update has been
// diverted to its stripe; contention there is already spread out).
func (s *stripe) addSpin(d float64) {
	for !s.tryAdd(d) {
	}
}

func (s *stripe) load() float64 { return math.Float64frombits(s.bits.Load()) }

// floatAdder is the shared striped accumulator behind Counter values and
// histogram sums.
type floatAdder struct {
	base    stripe
	cells   [nStripes]stripe
	spilled atomic.Uint32 // set once contention has ever diverted an update
}

func (a *floatAdder) add(d float64) {
	if a.base.tryAdd(d) {
		return
	}
	// Contended: pick a stripe from the mixed bits of the value and spin
	// there. Different goroutines racing on different values scatter across
	// stripes; identical values still spread via the retry offset.
	a.spilled.Store(1)
	h := math.Float64bits(d)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	for i := uint64(0); ; i++ {
		if a.cells[(h+i)%nStripes].tryAdd(d) {
			return
		}
	}
}

func (a *floatAdder) value() float64 {
	v := a.base.load()
	if a.spilled.Load() != 0 {
		for i := range a.cells {
			v += a.cells[i].load()
		}
	}
	return v
}

// Counter is a monotonically increasing metric (events, cycles, bytes).
// All methods are safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	adder floatAdder
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d (negative deltas are ignored: counters
// are monotonic by contract).
func (c *Counter) Add(d float64) {
	if c == nil || d <= 0 {
		return
	}
	c.adder.add(d)
}

// Value returns the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.adder.value()
}

// Gauge is a point-in-time value that can move both ways (queue depth,
// in-flight cells, peak bytes). Updates are single atomic operations; all
// methods no-op on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is greater (high-water marks).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bucket upper bounds are set at
// registration and immutable; Observe is one binary search plus one atomic
// increment (and a striped float add for the sum). Prometheus semantics:
// a bucket with bound le counts observations v ≤ le; values above the last
// bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	sum    floatAdder
	n      atomic.Uint64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.value()
}

// Buckets returns the bucket bounds and their non-cumulative counts
// (the final count is the +Inf overflow bucket).
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// CycleBuckets returns the standard virtual-cycle histogram scale:
// exponential decades from 1e3 to 1e12 cycles (≈1 µs to ≈17 min at the
// 1 GHz reference clock), two buckets per decade.
func CycleBuckets() []float64 {
	var b []float64
	for d := 3; d <= 12; d++ {
		p := math.Pow(10, float64(d))
		b = append(b, p, 3*p)
	}
	return b
}

// TimeBuckets returns the standard wall-time histogram scale in seconds:
// 100 µs to 100 s, 1-3-10 per decade.
func TimeBuckets() []float64 {
	var b []float64
	for d := -4; d <= 1; d++ {
		p := math.Pow(10, float64(d))
		b = append(b, p, 3*p)
	}
	return append(b, 100)
}

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered instrument.
type metric struct {
	name string // full name, possibly with a {label="v"} suffix
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a concurrent instrument namespace. Registration takes a
// write lock; instrument updates after registration are lock-free (the
// instruments themselves are atomic). The zero value is not usable — call
// NewRegistry — but a nil *Registry is valid everywhere and hands out nil
// instruments, keeping the disabled path to one branch per hook.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Label renders a metric name with a sorted label set appended in
// Prometheus form: Label("x_total", "tier", "basic") = `x_total{tier="basic"}`.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("telemetry.Label: odd key/value list")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry; help is kept from the first registration.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindCounter)
	return m.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindGauge)
	return m.g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds must be sorted ascending; later calls
// reuse the first registration's buckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kindHistogram {
			panic(fmt.Sprintf("telemetry: %s already registered as %s", name, m.kind))
		}
		return m.h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: %s: bucket bounds not ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.metrics[name] = &metric{name: name, help: help, kind: kindHistogram, h: h}
	return h
}

func (r *Registry) lookup(name, help string, kind metricKind) *metric {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered as %s", name, m.kind))
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered as %s", name, m.kind))
		}
		return m
	}
	m = &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	}
	r.metrics[name] = m
	return m
}

// sortedMetrics snapshots the registration table in name order.
func (r *Registry) sortedMetrics() []*metric {
	r.mu.RLock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// baseName strips a {label} suffix, returning the metric family name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel appends one more label to a possibly-labeled metric name
// (used for histogram le labels).
func withLabel(name, k, v string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + k + "=" + strconv.Quote(v) + "}"
	}
	return name + "{" + k + "=" + strconv.Quote(v) + "}"
}

// fnum renders a float in the Prometheus exposition style.
func fnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus serializes every registered instrument in the
// Prometheus text exposition format (v0.0.4), sorted by metric name so a
// quiescent registry always scrapes to identical bytes. Metrics that share
// a family (same name before the label braces) share one # HELP/# TYPE
// header, as the format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.sortedMetrics() {
		fam := baseName(m.name)
		if fam != lastFamily {
			lastFamily = fam
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", fam, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", fam, m.kind)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %s\n", m.name, fnum(m.c.Value()))
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", m.name, fnum(m.g.Value()))
		case kindHistogram:
			bounds, counts := m.h.Buckets()
			cum := uint64(0)
			for i, bd := range bounds {
				cum += counts[i]
				fmt.Fprintf(&b, "%s %d\n", withLabel(m.name+"_bucket", "le", fnum(bd)), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(&b, "%s %d\n", withLabel(m.name+"_bucket", "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, fnum(m.h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
