package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wasmbench/internal/obsv"
)

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec, rec.Body.String()
}

func TestHandlerEndpoints(t *testing.T) {
	hub := NewHub(8)
	hub.Reg.Counter("wasm_steps_total", "steps").Add(42)
	hub.Flight.Emit(obsv.Event{Kind: obsv.KindTierUp, TS: 1, Name: "main", Track: "wasm"})
	hub.MergeProfiles([]obsv.FuncProfile{{Track: "wasm", Name: "main", Calls: 1, SelfCycles: 99.6}})
	hub.Publish("cells", func() any { return map[string]int{"done": 3} })
	h := Handler(hub)

	rec, body := get(t, h, "/healthz")
	if rec.Code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", rec.Code, body)
	}

	rec, body = get(t, h, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "wasm_steps_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	rec, body = get(t, h, "/debug/trace")
	if rec.Code != 200 {
		t.Fatalf("/debug/trace = %d", rec.Code)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/debug/trace not valid JSON: %v\n%s", err, body)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("/debug/trace has no events")
	}

	rec, body = get(t, h, "/debug/profile")
	if rec.Code != 200 || !strings.Contains(body, "wasm;main 100") {
		t.Fatalf("/debug/profile = %d %q (want folded 'wasm;main 100')", rec.Code, body)
	}

	rec, body = get(t, h, "/debug/cells")
	if rec.Code != 200 || !strings.Contains(body, `"done": 3`) {
		t.Fatalf("/debug/cells = %d %q", rec.Code, body)
	}

	// Unknown provider: 404 listing what exists.
	rec, body = get(t, h, "/debug/nonesuch")
	if rec.Code != 404 || !strings.Contains(body, "cells") {
		t.Fatalf("/debug/nonesuch = %d %q", rec.Code, body)
	}
}

// TestHandlerFailureDump covers /debug/trace?which=failure: 404 before any
// dump, then the frozen window — with a truncation marker when the ring
// had overwritten events — after one fires.
func TestHandlerFailureDump(t *testing.T) {
	hub := NewHub(2)
	h := Handler(hub)

	rec, _ := get(t, h, "/debug/trace?which=failure")
	if rec.Code != 404 {
		t.Fatalf("failure trace before dump = %d, want 404", rec.Code)
	}

	for i := 0; i < 5; i++ {
		hub.Flight.Emit(obsv.Event{Kind: obsv.KindCallEnter, TS: float64(i)})
	}
	hub.DumpFlight("cell boom")
	rec, body := get(t, h, "/debug/trace?which=failure")
	if rec.Code != 200 {
		t.Fatalf("failure trace = %d", rec.Code)
	}
	if !strings.Contains(body, "TRUNCATED") || !strings.Contains(body, "cell boom") {
		t.Fatalf("failure trace missing truncation marker or reason:\n%s", body)
	}
}

func TestStartServesAndCloses(t *testing.T) {
	hub := NewHub(8)
	hub.Reg.Gauge("up", "").Set(1)
	srv, err := Start(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("Start did not bind an address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
