package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; the
// striped adder must neither lose nor duplicate updates. Run under -race
// this also exercises the CAS/stripe paths for data races.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), float64(goroutines*perG); got != want {
		t.Fatalf("concurrent counter = %v, want %v", got, want)
	}
}

// TestCounterFloatConcurrent checks striped float accumulation: fractional
// cycle charges from many goroutines must sum exactly (0.25 is a power of
// two, so float addition here is associative and the total is exact).
func TestCounterFloatConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cycles_total", "")
	const goroutines, perG = 8, 4000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(0.25)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), float64(goroutines*perG)*0.25; got != want {
		t.Fatalf("float counter = %v, want %v", got, want)
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "")
	c.Add(5)
	c.Add(-3) // ignored: counters are monotonic by contract
	c.Add(0)  // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter after negative add = %v, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
	g.SetMax(5) // below current: no effect
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax lowered gauge to %v", got)
	}
	g.SetMax(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("SetMax = %v, want 42", got)
	}
}

// TestNilInstruments verifies the disabled path: a nil registry hands out
// nil instruments and every method on them is an inert no-op.
func TestNilInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatalf("nil registry snapshot has %d metrics", len(s.Metrics))
	}
	if NewVMInstruments(nil) != nil || NewJSInstruments(nil) != nil ||
		NewCompilerInstruments(nil) != nil || NewCacheInstruments(nil) != nil ||
		NewHarnessInstruments(nil) != nil {
		t.Fatal("nil registry produced a non-nil instrument bundle")
	}
}

// TestHistogramBucketBoundaries pins the Prometheus le semantics: a bucket
// with bound le counts observations v <= le, and values above the last
// bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 10, 100})
	for _, v := range []float64{
		0.5,   // le=1
		1,     // le=1 (boundary is inclusive)
		1.001, // le=10
		10,    // le=10
		99.99, // le=100
		100,   // le=100
		100.1, // +Inf
		1e9,   // +Inf
	} {
		h.Observe(v)
	}
	_, counts := h.Buckets()
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.001 + 10 + 99.99 + 100 + 100.1 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-9*wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc", "", []float64{100, 1000})
	const goroutines, perG = 8, 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*200 + 50)) // spreads across all three buckets
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	_, counts := h.Buckets()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, count is %d", total, h.Count())
	}
}

// TestRegistryGetOrCreate checks idempotent registration (the instrument
// bundles re-register per run and must land on the same instruments).
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("same", "first help")
	c2 := r.Counter("same", "second help ignored")
	if c1 != c2 {
		t.Fatal("repeated Counter registration returned distinct instruments")
	}
	h1 := r.Histogram("hist", "", []float64{1, 2})
	h2 := r.Histogram("hist", "", []float64{9, 99}) // bounds from first registration win
	if h1 != h2 {
		t.Fatal("repeated Histogram registration returned distinct instruments")
	}
	bounds, _ := h2.Buckets()
	if len(bounds) != 2 || bounds[0] != 1 || bounds[1] != 2 {
		t.Fatalf("second registration changed bounds: %v", bounds)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("same", "")
}

func TestLabel(t *testing.T) {
	if got, want := Label("x_total"), "x_total"; got != want {
		t.Fatalf("Label no kv = %q, want %q", got, want)
	}
	got := Label("x_total", "tier", "basic")
	if want := `x_total{tier="basic"}`; got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
	// Keys sort, values escape.
	got = Label("x", "b", "2", "a", `say "hi"`)
	if want := `x{a="say \"hi\"",b="2"}`; got != want {
		t.Fatalf("Label multi = %q, want %q", got, want)
	}
}

// TestWritePrometheus locks down the exposition format: sorted families,
// one HELP/TYPE header per family even with labeled variants, cumulative
// le buckets with +Inf, and _sum/_count lines.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("tier_cycles_total", "tier", "basic"), "cycles per tier").Add(10)
	r.Counter(Label("tier_cycles_total", "tier", "opt"), "cycles per tier").Add(20)
	r.Gauge("queue_depth", "pending cells").Set(3)
	h := r.Histogram("lat_seconds", "latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="1"} 1
lat_seconds_bucket{le="10"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 105.5
lat_seconds_count 3
# HELP queue_depth pending cells
# TYPE queue_depth gauge
queue_depth 3
# HELP tier_cycles_total cycles per tier
# TYPE tier_cycles_total counter
tier_cycles_total{tier="basic"} 10
tier_cycles_total{tier="opt"} 20
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	h := r.Histogram("b_hist", "", []float64{10})
	h.Observe(5)
	h.Observe(50)

	s := r.Snapshot()
	if len(s.Metrics) != 2 {
		t.Fatalf("snapshot has %d metrics, want 2", len(s.Metrics))
	}
	if m := s.Metrics[0]; m.Name != "a_total" || m.Type != "counter" || m.Value != 7 {
		t.Fatalf("snapshot[0] = %+v", m)
	}
	m := s.Metrics[1]
	if m.Type != "histogram" || m.Count != 2 || m.Sum != 55 {
		t.Fatalf("snapshot[1] = %+v", m)
	}
	if len(m.Buckets) != 2 || m.Buckets[0].Count != 1 || m.Buckets[1].Count != 1 {
		t.Fatalf("snapshot buckets = %+v", m.Buckets)
	}
	if !math.IsInf(m.Buckets[1].LE, 1) {
		t.Fatalf("overflow bucket LE = %v, want +Inf", m.Buckets[1].LE)
	}

	var js strings.Builder
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"le": null`) {
		t.Fatalf("JSON overflow bucket not le:null:\n%s", js.String())
	}
	txt := s.Text()
	if !strings.Contains(txt, "a_total") || !strings.Contains(txt, "count=2 sum=55") {
		t.Fatalf("snapshot text missing metrics:\n%s", txt)
	}
}
