package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// SnapshotBucket is one histogram bucket in a snapshot (non-cumulative).
type SnapshotBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// SnapshotMetric is the frozen value of one instrument.
type SnapshotMetric struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Help string `json:"help,omitempty"`
	// Value holds the counter total or gauge level; unused for histograms.
	Value float64 `json:"value,omitempty"`
	// Histogram payload: Sum/Count plus per-bucket counts. The final
	// bucket (LE = +Inf, rendered as le:null in JSON) is the overflow.
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
	Buckets []SnapshotBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a whole registry, ordered by metric
// name. It is what `benchtab -telemetry-snapshot` and `wasmrun
// -telemetry-snapshot` write for one-shot runs, and what tests assert on.
type Snapshot struct {
	Metrics []SnapshotMetric `json:"metrics"`
}

// Snapshot freezes the registry. A nil registry snapshots to zero metrics.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, m := range r.sortedMetrics() {
		sm := SnapshotMetric{Name: m.name, Type: m.kind.String(), Help: m.help}
		switch m.kind {
		case kindCounter:
			sm.Value = m.c.Value()
		case kindGauge:
			sm.Value = m.g.Value()
		case kindHistogram:
			bounds, counts := m.h.Buckets()
			for i, bd := range bounds {
				sm.Buckets = append(sm.Buckets, SnapshotBucket{LE: bd, Count: counts[i]})
			}
			sm.Buckets = append(sm.Buckets, SnapshotBucket{LE: infBound, Count: counts[len(counts)-1]})
			sm.Sum = m.h.Sum()
			for _, c := range counts {
				sm.Count += c
			}
		}
		s.Metrics = append(s.Metrics, sm)
	}
	return s
}

// infBound marks the overflow bucket in snapshots; JSON has no Inf, so
// MarshalJSON maps it to null.
var infBound = math.Inf(1)

// MarshalJSON renders the bucket with le:null for the overflow bucket.
func (b SnapshotBucket) MarshalJSON() ([]byte, error) {
	if b.LE == infBound {
		return []byte(fmt.Sprintf(`{"le":null,"count":%d}`, b.Count)), nil
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, fnum(b.LE), b.Count)), nil
}

// Text renders the snapshot as an aligned plain-text table: one line per
// counter/gauge, histograms as a header line plus indented buckets that
// actually hold observations.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, m := range s.Metrics {
		switch m.Type {
		case "histogram":
			fmt.Fprintf(&b, "%-52s count=%d sum=%s\n", m.Name, m.Count, fnum(m.Sum))
			for _, bk := range m.Buckets {
				if bk.Count == 0 {
					continue
				}
				le := "+Inf"
				if bk.LE != infBound {
					le = fnum(bk.LE)
				}
				fmt.Fprintf(&b, "    le=%-12s %d\n", le, bk.Count)
			}
		default:
			fmt.Fprintf(&b, "%-52s %s\n", m.Name, fnum(m.Value))
		}
	}
	return b.String()
}

// WriteJSON serializes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
