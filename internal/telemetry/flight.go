package telemetry

import (
	"sync"

	"wasmbench/internal/obsv"
)

// FlightRecorder is a bounded obsv.Tracer that keeps the *newest* events:
// a fixed-capacity ring where each arrival past capacity overwrites the
// oldest record. This is the complement of obsv.Collector's Limit, which
// keeps the oldest events and counts the rest in Dropped() — a collector
// answers "how did the run begin", a flight recorder answers "what just
// happened", which is what you want when a cell fails mid-sweep or when a
// live /debug/trace scrape asks for the current window.
//
// Emit is mutex-protected (like Collector) and safe for concurrent use
// from the harness worker pool and the VMs it runs. Snapshot can be taken
// at any instant, including while events are still arriving.
type FlightRecorder struct {
	mu          sync.Mutex
	buf         []obsv.Event
	next        int // ring cursor: index of the slot the next event lands in
	wrapped     bool
	overwritten uint64
}

// DefaultFlightCapacity is the event window kept when no explicit
// capacity is configured (≈ a few seconds of VM events on a busy sweep).
const DefaultFlightCapacity = 65536

// NewFlightRecorder returns a recorder keeping the newest capacity events
// (capacity <= 0 selects DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]obsv.Event, 0, capacity)}
}

// Emit stores the event, overwriting the oldest once the ring is full.
func (f *FlightRecorder) Emit(e obsv.Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.overwritten++
		f.wrapped = true
	}
	f.next++
	if f.next == cap(f.buf) {
		f.next = 0
	}
	f.mu.Unlock()
}

// Snapshot returns the current window in arrival order (oldest retained
// event first) plus how many older events have been overwritten so far.
func (f *FlightRecorder) Snapshot() (events []obsv.Event, overwritten uint64) {
	if f == nil {
		return nil, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.wrapped {
		return append([]obsv.Event(nil), f.buf...), f.overwritten
	}
	events = make([]obsv.Event, 0, len(f.buf))
	events = append(events, f.buf[f.next:]...)
	events = append(events, f.buf[:f.next]...)
	return events, f.overwritten
}

// Len returns the number of events currently held.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return cap(f.buf)
}

// Overwritten returns how many events have been displaced by newer ones.
func (f *FlightRecorder) Overwritten() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.overwritten
}

// Reset discards the window (capacity is kept).
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.buf = f.buf[:0]
	f.next = 0
	f.wrapped = false
	f.overwritten = 0
	f.mu.Unlock()
}
