package telemetry

import (
	"sort"
	"sync"

	"wasmbench/internal/obsv"
)

// Hub bundles the live telemetry surfaces of one process: the metrics
// Registry, the flight-recorder trace ring, a merged live profile (folded
// stacks across every measured VM so far), named JSON state providers
// (the harness publishes its in-flight cell table as "cells"), and the
// most recent failure dump. A nil *Hub is fully inert, mirroring the
// nil-Tracer discipline.
type Hub struct {
	Reg    *Registry
	Flight *FlightRecorder

	mu        sync.Mutex
	profiles  map[string]*obsv.FuncProfile // keyed by track + "\x00" + name
	providers map[string]func() any
	lastDump  *FlightDump
	dumps     uint64
}

// FlightDump is a flight-recorder snapshot frozen at a failure.
type FlightDump struct {
	// Reason labels what triggered the dump (cell label + error).
	Reason string `json:"reason"`
	// Overwritten is how many older events the ring had already displaced
	// when the dump was taken.
	Overwritten uint64       `json:"overwritten"`
	Events      []obsv.Event `json:"-"`
}

// NewHub returns a hub with a fresh registry and a flight recorder of the
// given capacity (<= 0 selects DefaultFlightCapacity).
func NewHub(flightCapacity int) *Hub {
	return &Hub{
		Reg:       NewRegistry(),
		Flight:    NewFlightRecorder(flightCapacity),
		profiles:  make(map[string]*obsv.FuncProfile),
		providers: make(map[string]func() any),
	}
}

// Registry returns the hub's registry (nil on a nil hub), so callers can
// write h.Registry().Counter(...) without a nil check of their own.
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.Reg
}

// Tracer returns the hub's flight recorder as an obsv.Tracer, or nil on a
// nil hub — preserving the VMs' disabled fast path.
func (h *Hub) Tracer() obsv.Tracer {
	if h == nil || h.Flight == nil {
		return nil
	}
	return h.Flight
}

// MergeProfiles folds per-function profiles from one finished measurement
// into the hub's cumulative live profile: calls and self/total cycles sum
// per (track, function). The merged view backs /debug/profile.
func (h *Hub) MergeProfiles(profiles []obsv.FuncProfile) {
	if h == nil || len(profiles) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range profiles {
		key := p.Track + "\x00" + p.Name
		if have, ok := h.profiles[key]; ok {
			have.Calls += p.Calls
			have.SelfCycles += p.SelfCycles
			have.TotalCycles += p.TotalCycles
		} else {
			cp := p
			cp.Classes = nil // class mixes don't merge meaningfully across cells
			h.profiles[key] = &cp
		}
	}
}

// Profiles returns the merged live profile, sorted by self cycles
// descending (ties by track+name for determinism).
func (h *Hub) Profiles() []obsv.FuncProfile {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	out := make([]obsv.FuncProfile, 0, len(h.profiles))
	for _, p := range h.profiles {
		out = append(out, *p)
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfCycles != out[j].SelfCycles {
			return out[i].SelfCycles > out[j].SelfCycles
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Publish registers (or replaces) a named JSON state provider. The server
// calls the provider on each matching /debug/<name> request; the returned
// value is marshaled with encoding/json, so providers must return a
// snapshot safe to read after the call (no live shared state).
func (h *Hub) Publish(name string, fn func() any) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.providers[name] = fn
	h.mu.Unlock()
}

// Provider returns the named state provider, or nil.
func (h *Hub) Provider(name string) func() any {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.providers[name]
}

// DumpFlight freezes the current flight-recorder window as the hub's
// failure dump. The harness calls this when a cell fails or is
// quarantined, so the trace context that led up to the failure survives
// even after the ring moves on; /debug/trace?which=failure serves it.
func (h *Hub) DumpFlight(reason string) {
	if h == nil || h.Flight == nil {
		return
	}
	events, over := h.Flight.Snapshot()
	h.mu.Lock()
	h.lastDump = &FlightDump{Reason: reason, Overwritten: over, Events: events}
	h.dumps++
	h.mu.Unlock()
}

// LastDump returns the most recent failure dump (nil if none fired) and
// the total number of dumps taken.
func (h *Hub) LastDump() (*FlightDump, uint64) {
	if h == nil {
		return nil, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastDump, h.dumps
}

// --- Per-layer instrument bundles -----------------------------------------
//
// Each bundle registers the layer's metric names once and hands the VMs /
// toolchain / harness a struct of instruments to poke. A nil bundle (the
// zero-telemetry default) costs one branch per hook site; all instruments
// inside a non-nil bundle are non-nil.

// VMInstruments are the Wasm VM's live metrics. Event-shaped updates
// (tier-ups, grows) happen at their rare hook sites; bulk counters (steps,
// per-tier cycles) are flushed once per exported Call so the dispatch loop
// itself carries no telemetry writes.
type VMInstruments struct {
	Runs          *Counter
	Steps         *Counter
	BasicCycles   *Counter
	OptCycles     *Counter
	TierUps       *Counter
	MemGrowOps    *Counter
	MemGrowPages  *Counter
	FusedPairs    *Counter
	RegTranslated *Counter
	AOTCycles     *Counter
	AOTTranslated *Counter
	Superblocks   *Counter
	PeakMemBytes  *Gauge
}

// NewVMInstruments registers the wasm_* metric family on r (nil r → nil).
func NewVMInstruments(r *Registry) *VMInstruments {
	if r == nil {
		return nil
	}
	return &VMInstruments{
		Runs:          r.Counter("wasm_runs_total", "top-level exported-function calls completed"),
		Steps:         r.Counter("wasm_steps_total", "dynamic Wasm instructions executed"),
		BasicCycles:   r.Counter(Label("wasm_tier_cycles_total", "tier", "basic"), "virtual cycles charged by tier cost table"),
		OptCycles:     r.Counter(Label("wasm_tier_cycles_total", "tier", "opt"), "virtual cycles charged by tier cost table"),
		TierUps:       r.Counter("wasm_tierups_total", "functions promoted to the optimizing tier (§4.4.2)"),
		MemGrowOps:    r.Counter("wasm_mem_grow_ops_total", "memory.grow instructions executed (§4.2.2)"),
		MemGrowPages:  r.Counter("wasm_mem_grow_pages_total", "64 KiB pages granted by successful memory.grow"),
		FusedPairs:    r.Counter("wasm_fused_pairs_total", "superinstruction pairs formed at module load"),
		RegTranslated: r.Counter("wasm_reg_translations_total", "function bodies translated to register form"),
		AOTCycles:     r.Counter(Label("wasm_tier_cycles_total", "tier", "aot"), "virtual cycles charged while the AOT superblock dispatcher ran (sub-split of tier=\"opt\")"),
		AOTTranslated: r.Counter("wasm_aot_translations_total", "hot function bodies AOT-compiled into superblock closures"),
		Superblocks:   r.Counter("wasm_aot_superblocks_total", "superblocks built across all AOT compilations"),
		PeakMemBytes:  r.Gauge("wasm_linear_memory_peak_bytes", "largest linear-memory high-water mark seen (§4.3: Wasm memory never shrinks)"),
	}
}

// PoolInstruments are the Wasm instance pool's live metrics (wasm_vm_pool_*
// family). Counters are poked at checkout/recycle events — rare next to
// dispatch — so the pool carries no per-instruction telemetry cost.
type PoolInstruments struct {
	Hits          *Counter
	Misses        *Counter
	Recycles      *Counter
	ColdFallbacks *Counter
	Evictions     *Counter
	Discards      *Counter
	Live          *Gauge
	Idle          *Gauge
}

// NewPoolInstruments registers the wasm_vm_pool_* metric family on r
// (nil r → nil).
func NewPoolInstruments(r *Registry) *PoolInstruments {
	if r == nil {
		return nil
	}
	return &PoolInstruments{
		Hits:          r.Counter("wasm_vm_pool_hits_total", "checkouts served by a recycled snapshot-restored instance"),
		Misses:        r.Counter("wasm_vm_pool_misses_total", "checkouts that cloned a fresh instance from the snapshot"),
		Recycles:      r.Counter("wasm_vm_pool_recycles_total", "instances reset to their post-init snapshot and returned to the pool"),
		ColdFallbacks: r.Counter("wasm_vm_pool_cold_fallbacks_total", "checkouts served cold because the bounded pool was exhausted"),
		Evictions:     r.Counter("wasm_vm_pool_evictions_total", "idle instances discarded to make room for another config shape"),
		Discards:      r.Counter("wasm_vm_pool_discards_total", "instances dropped instead of recycled (failed reset or clone)"),
		Live:          r.Gauge("wasm_vm_pool_live_instances", "pool-tracked instances currently alive (checked out + idle)"),
		Idle:          r.Gauge("wasm_vm_pool_idle_instances", "recycled instances currently waiting in the pool"),
	}
}

// JSInstruments are the JS engine's live metrics.
type JSInstruments struct {
	Runs         *Counter
	Steps        *Counter
	Cycles       *Counter
	JITCompiles  *Counter
	Deopts       *Counter
	GCCycles     *Counter
	GCFreedBytes *Counter
	PeakHeap     *Gauge
}

// NewJSInstruments registers the js_* metric family on r (nil r → nil).
func NewJSInstruments(r *Registry) *JSInstruments {
	if r == nil {
		return nil
	}
	return &JSInstruments{
		Runs:         r.Counter("js_runs_total", "top-level program or function entries completed"),
		Steps:        r.Counter("js_steps_total", "dynamic evaluation steps executed"),
		Cycles:       r.Counter("js_cycles_total", "virtual cycles charged by the JS engine"),
		JITCompiles:  r.Counter("js_jit_compiles_total", "code objects promoted to the optimizing JIT tier (§4.4.1)"),
		Deopts:       r.Counter("js_deopts_total", "code objects pinned back to the interpreter (permanent deopt)"),
		GCCycles:     r.Counter("js_gc_cycles_total", "mark-sweep collections (§4.6)"),
		GCFreedBytes: r.Counter("js_gc_freed_bytes_total", "heap + external bytes reclaimed by GC"),
		PeakHeap:     r.Gauge("js_heap_peak_bytes", "largest JS-heap high-water mark seen"),
	}
}

// CompilerInstruments are the toolchain's live metrics.
type CompilerInstruments struct {
	Compiles *Counter
	PassWork *Histogram
}

// NewCompilerInstruments registers the compiler_* metric family on r.
func NewCompilerInstruments(r *Registry) *CompilerInstruments {
	if r == nil {
		return nil
	}
	return &CompilerInstruments{
		Compiles: r.Counter("compiler_compiles_total", "full pipeline runs completed"),
		PassWork: r.Histogram("compiler_pass_work_cycles", "per-pass deterministic work estimate (virtual cycles)", CycleBuckets()),
	}
}

// CacheInstruments are the harness artifact cache's live metrics. The
// cache already tallies these internally for the end-of-run summary; the
// instruments make them visible mid-sweep.
type CacheInstruments struct {
	Hits       *Counter
	Misses     *Counter
	DedupWaits *Counter
}

// NewCacheInstruments registers the compiler_cache_* metric family on r.
func NewCacheInstruments(r *Registry) *CacheInstruments {
	if r == nil {
		return nil
	}
	return &CacheInstruments{
		Hits:       r.Counter("compiler_cache_hits_total", "artifact-cache lookups satisfied without compiling"),
		Misses:     r.Counter("compiler_cache_misses_total", "artifact-cache lookups that ran the pipeline"),
		DedupWaits: r.Counter("compiler_cache_dedup_waits_total", "lookups that waited on an identical in-flight compile"),
	}
}

// HarnessInstruments are the sweep driver's live metrics.
type HarnessInstruments struct {
	CellsDone      *Counter
	CellWall       *Histogram // wall seconds per cell, end to end
	CellCompile    *Histogram // wall seconds spent compiling per cell
	CellMeasure    *Histogram // wall seconds spent measuring per cell
	CellCycles     *Histogram // virtual cycles per cell (sum over reps)
	QueueDepth     *Gauge
	Retries        *Counter
	Faults         *Counter
	Degraded       *Counter
	Quarantined    *Counter
	Checkpoints    *Counter
	FlightFailures *Counter
}

// NewHarnessInstruments registers the harness_* metric family on r.
func NewHarnessInstruments(r *Registry) *HarnessInstruments {
	if r == nil {
		return nil
	}
	return &HarnessInstruments{
		CellsDone:      r.Counter("harness_cells_done_total", "matrix cells completed (ok, failed, or quarantined)"),
		CellWall:       r.Histogram("harness_cell_wall_seconds", "end-to-end wall time per cell", TimeBuckets()),
		CellCompile:    r.Histogram("harness_cell_compile_seconds", "compile wall time per cell", TimeBuckets()),
		CellMeasure:    r.Histogram("harness_cell_measure_seconds", "measurement wall time per cell", TimeBuckets()),
		CellCycles:     r.Histogram("harness_cell_cycles", "virtual cycles per cell across reps", CycleBuckets()),
		QueueDepth:     r.Gauge("harness_queue_depth", "cells enqueued but not yet claimed by a worker"),
		Retries:        r.Counter("harness_retries_total", "measurement attempts retried after a failure"),
		Faults:         r.Counter("harness_faults_total", "injected faults observed during attempts"),
		Degraded:       r.Counter("harness_degraded_total", "cells that completed on a degraded config rung"),
		Quarantined:    r.Counter("harness_quarantined_total", "cells marked quarantined after exhausting the ladder"),
		Checkpoints:    r.Counter("harness_checkpoints_total", "cells restored from a JSONL checkpoint"),
		FlightFailures: r.Counter("harness_flight_dumps_total", "flight-recorder dumps frozen on cell failure"),
	}
}

// ServeInstruments are the benchserve daemon's live metrics: the
// admission funnel (requests → admitted|shed|rejected), terminal
// outcomes (served|failed|timeout|canceled), breaker activity, and the
// two latency splits that matter under load — time queued vs time
// running.
type ServeInstruments struct {
	Requests     *Counter
	Admitted     *Counter
	Shed         *Counter // load-shed with 429 + Retry-After (bounded queue full, or injected)
	Rejected     *Counter // refused by an injected admission fault or drain
	Served       *Counter
	Failed       *Counter
	Timeouts     *Counter
	Canceled     *Counter
	BreakerOpen  *Counter // requests refused by an open circuit breaker
	BreakerTrips *Counter // closed→open transitions
	QueueDepth   *Gauge
	InFlight     *Gauge
	QueueWait    *Histogram // seconds between admission and worker pickup
	RunWall      *Histogram // seconds between worker pickup and terminal response
}

// NewServeInstruments registers the serve_* metric family on r.
func NewServeInstruments(r *Registry) *ServeInstruments {
	if r == nil {
		return nil
	}
	return &ServeInstruments{
		Requests:     r.Counter("serve_requests_total", "run requests received (any outcome)"),
		Admitted:     r.Counter("serve_admitted_total", "requests admitted into the bounded queue"),
		Shed:         r.Counter("serve_shed_total", "requests load-shed with 429 + Retry-After"),
		Rejected:     r.Counter("serve_rejected_total", "requests refused at admission (drain or injected fault)"),
		Served:       r.Counter("serve_served_total", "requests completed successfully"),
		Failed:       r.Counter("serve_failed_total", "requests that exhausted the resilience ladder"),
		Timeouts:     r.Counter("serve_timeouts_total", "requests that exceeded their deadline"),
		Canceled:     r.Counter("serve_canceled_total", "requests canceled by drain or client disconnect"),
		BreakerOpen:  r.Counter("serve_breaker_open_total", "requests refused by an open circuit breaker"),
		BreakerTrips: r.Counter("serve_breaker_trips_total", "circuit-breaker closed-to-open transitions"),
		QueueDepth:   r.Gauge("serve_queue_depth", "admitted requests not yet claimed by a worker"),
		InFlight:     r.Gauge("serve_in_flight", "requests currently executing"),
		QueueWait:    r.Histogram("serve_queue_wait_seconds", "time between admission and worker pickup", TimeBuckets()),
		RunWall:      r.Histogram("serve_run_wall_seconds", "time between worker pickup and terminal response", TimeBuckets()),
	}
}
