package telemetry

import (
	"sync"
	"testing"

	"wasmbench/internal/obsv"
)

func ev(i int) obsv.Event {
	return obsv.Event{Kind: obsv.KindCallEnter, TS: float64(i), A: float64(i)}
}

// TestFlightKeepsNewest is the core contract: the ring keeps the newest
// events, the exact complement of obsv.Collector's keep-oldest Limit.
func TestFlightKeepsNewest(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Emit(ev(i))
	}
	events, overwritten := f.Snapshot()
	if overwritten != 6 {
		t.Fatalf("overwritten = %d, want 6", overwritten)
	}
	if len(events) != 4 {
		t.Fatalf("window holds %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := float64(6 + i); e.TS != want {
			t.Fatalf("events[%d].TS = %v, want %v (window must be newest, in order)", i, e.TS, want)
		}
	}

	// Contrast with the collector on the same stream: Limit keeps the oldest.
	c := &obsv.Collector{Limit: 4}
	for i := 0; i < 10; i++ {
		c.Emit(ev(i))
	}
	kept := c.Events()
	if len(kept) != 4 || kept[0].TS != 0 || kept[3].TS != 3 {
		t.Fatalf("collector kept %v..%v of %d, want oldest 0..3",
			kept[0].TS, kept[len(kept)-1].TS, len(kept))
	}
	if c.Dropped() != 6 {
		t.Fatalf("collector dropped = %d, want 6", c.Dropped())
	}
}

func TestFlightPartialWindow(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 3; i++ {
		f.Emit(ev(i))
	}
	events, overwritten := f.Snapshot()
	if overwritten != 0 || len(events) != 3 {
		t.Fatalf("partial window: %d events, %d overwritten", len(events), overwritten)
	}
	if f.Len() != 3 || f.Cap() != 8 {
		t.Fatalf("Len/Cap = %d/%d, want 3/8", f.Len(), f.Cap())
	}
}

func TestFlightReset(t *testing.T) {
	f := NewFlightRecorder(2)
	for i := 0; i < 5; i++ {
		f.Emit(ev(i))
	}
	f.Reset()
	if f.Len() != 0 || f.Overwritten() != 0 {
		t.Fatalf("after Reset: Len=%d Overwritten=%d", f.Len(), f.Overwritten())
	}
	f.Emit(ev(9))
	events, _ := f.Snapshot()
	if len(events) != 1 || events[0].TS != 9 {
		t.Fatalf("post-reset window = %+v", events)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Emit(ev(1))
	if events, over := f.Snapshot(); events != nil || over != 0 {
		t.Fatal("nil recorder snapshot not empty")
	}
	if f.Len() != 0 || f.Cap() != 0 || f.Overwritten() != 0 {
		t.Fatal("nil recorder reported state")
	}
	f.Reset()

	var h *Hub
	if h.Tracer() != nil || h.Registry() != nil {
		t.Fatal("nil hub handed out live surfaces")
	}
	h.DumpFlight("x")
	h.MergeProfiles([]obsv.FuncProfile{{Name: "f"}})
	h.Publish("p", func() any { return nil })
	if d, n := h.LastDump(); d != nil || n != 0 {
		t.Fatal("nil hub recorded a dump")
	}
}

// TestFlightConcurrent checks the ring under parallel emitters (data-race
// coverage via -race; the count invariant holds regardless of interleaving).
func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				f.Emit(ev(i))
			}
		}()
	}
	wg.Wait()
	events, overwritten := f.Snapshot()
	if len(events) != 64 {
		t.Fatalf("full ring holds %d, want 64", len(events))
	}
	if got, want := uint64(len(events))+overwritten, uint64(goroutines*perG); got != want {
		t.Fatalf("held+overwritten = %d, want %d", got, want)
	}
}

// TestHubDumpFreezesWindow verifies a failure dump is immune to later
// traffic — the whole point of freezing it.
func TestHubDumpFreezesWindow(t *testing.T) {
	h := NewHub(4)
	for i := 0; i < 6; i++ {
		h.Flight.Emit(ev(i))
	}
	h.DumpFlight("cell X failed")
	for i := 100; i < 110; i++ {
		h.Flight.Emit(ev(i)) // would overwrite the live window completely
	}
	dump, n := h.LastDump()
	if n != 1 || dump == nil {
		t.Fatalf("dumps = %d, dump = %v", n, dump)
	}
	if dump.Reason != "cell X failed" || dump.Overwritten != 2 {
		t.Fatalf("dump = %+v", dump)
	}
	if len(dump.Events) != 4 || dump.Events[0].TS != 2 || dump.Events[3].TS != 5 {
		t.Fatalf("dump window = %+v, want TS 2..5", dump.Events)
	}
}

func TestHubMergeProfiles(t *testing.T) {
	h := NewHub(4)
	h.MergeProfiles([]obsv.FuncProfile{
		{Track: "wasm", Name: "f", Calls: 1, SelfCycles: 10, TotalCycles: 15},
		{Track: "wasm", Name: "g", Calls: 2, SelfCycles: 5, TotalCycles: 5},
	})
	h.MergeProfiles([]obsv.FuncProfile{
		{Track: "wasm", Name: "f", Calls: 3, SelfCycles: 30, TotalCycles: 45},
		{Track: "js", Name: "f", Calls: 1, SelfCycles: 100, TotalCycles: 100},
	})
	ps := h.Profiles()
	if len(ps) != 3 {
		t.Fatalf("merged %d profiles, want 3", len(ps))
	}
	// Sorted by self cycles descending: js/f (100), wasm/f (40), wasm/g (5).
	if ps[0].Track != "js" || ps[0].SelfCycles != 100 {
		t.Fatalf("profiles[0] = %+v", ps[0])
	}
	if ps[1].Name != "f" || ps[1].Calls != 4 || ps[1].SelfCycles != 40 || ps[1].TotalCycles != 60 {
		t.Fatalf("merged wasm/f = %+v", ps[1])
	}
}
