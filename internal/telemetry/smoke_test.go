// In-process smoke test of the whole telemetry stack: a real (small) sweep
// under the harness with a live server attached, every endpoint scraped and
// checked for well-formedness. This is what `make telemetry-smoke` runs.
//
// The package is telemetry_test (not telemetry) because it drives
// internal/harness, which itself imports telemetry.
package telemetry_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/harness"
	"wasmbench/internal/ir"
	"wasmbench/internal/telemetry"
)

func scrape(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestTelemetrySmoke runs a 4-cell sweep with profiling VMs wired into a
// hub, serves it over HTTP, and asserts all five endpoints are well-formed
// and reflect the sweep that just ran.
func TestTelemetrySmoke(t *testing.T) {
	b, err := benchsuite.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub(1024)
	profile := browser.Chrome(browser.Desktop)
	profile.SetInstruments(hub.Registry())
	profile.SetTracer(hub.Tracer())
	profile.SetProfiling(true)

	srv, err := telemetry.Start(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The server is live before the sweep starts: a scrape must already
	// succeed (it just sees zero cells done).
	if code, _ := scrape(t, srv.Addr(), "/healthz"); code != 200 {
		t.Fatalf("pre-sweep /healthz = %d", code)
	}

	var cells []harness.Cell
	for _, sz := range []benchsuite.Size{benchsuite.XS, benchsuite.S} {
		for _, lang := range []string{"wasm", "js"} {
			cells = append(cells, harness.Cell{
				Bench: b, Size: sz, Level: ir.O2, Lang: lang, Profile: profile,
			})
		}
	}
	results, _ := harness.RunCellsWith(cells, harness.RunOptions{Workers: 2, Telemetry: hub})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("sweep cell failed: %v", r.Err)
		}
	}

	// /metrics: Prometheus text with every layer's family present.
	code, body := scrape(t, srv.Addr(), "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE wasm_steps_total counter",
		"# TYPE js_steps_total counter",
		"# TYPE compiler_compiles_total counter",
		"# TYPE harness_cell_wall_seconds histogram",
		`harness_cells_done_total 4`,
		`wasm_tier_cycles_total{tier="basic"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("metrics body:\n%s", body)
	}

	// /debug/trace: valid Chrome trace JSON with VM events from the sweep.
	code, body = scrape(t, srv.Addr(), "/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace = %d", code)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/debug/trace invalid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("/debug/trace captured no events from the sweep")
	}

	// /debug/profile: folded stacks, each line "track;func cycles".
	code, body = scrape(t, srv.Addr(), "/debug/profile")
	if code != 200 || body == "" {
		t.Fatalf("/debug/profile = %d, %d bytes", code, len(body))
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("folded line %q has no count", line)
		}
		if _, err := strconv.ParseInt(line[i+1:], 10, 64); err != nil {
			t.Fatalf("folded line %q: bad count: %v", line, err)
		}
	}

	// /debug/cells: the harness's sweep state, all cells accounted for.
	code, body = scrape(t, srv.Addr(), "/debug/cells")
	if code != 200 {
		t.Fatalf("/debug/cells = %d", code)
	}
	var state struct {
		Total int `json:"total"`
		Done  int `json:"done"`
		Cells []struct {
			Label  string `json:"label"`
			Status string `json:"status"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(body), &state); err != nil {
		t.Fatalf("/debug/cells invalid JSON: %v\n%s", err, body)
	}
	if state.Total != 4 || state.Done != 4 || len(state.Cells) != 4 {
		t.Fatalf("/debug/cells total=%d done=%d cells=%d, want 4/4/4",
			state.Total, state.Done, len(state.Cells))
	}
	for _, c := range state.Cells {
		if c.Status != "ok" {
			t.Fatalf("cell %s status %q, want ok", c.Label, c.Status)
		}
	}
}
