package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"wasmbench/internal/obsv"
)

// Server is the embeddable telemetry endpoint. It serves five routes:
//
//	/metrics        Prometheus text exposition of the hub's registry
//	/debug/trace    Chrome trace_event JSON of the flight-recorder window
//	                (?which=failure serves the last failure dump instead)
//	/debug/profile  folded stacks of the merged live profile
//	/debug/cells    JSON from the "cells" state provider (the harness
//	                publishes its in-flight cell table there); any other
//	                published provider is reachable as /debug/<name>
//	/healthz        liveness probe
//
// Start binds a listener immediately (":0" picks a free port; Addr tells
// you which), so callers can scrape the moment Start returns. All
// handlers read concurrent-safe snapshots — scraping mid-sweep is the
// intended use.
type Server struct {
	hub *Hub
	ln  net.Listener
	srv *http.Server
}

// Handler returns the telemetry routes as an http.Handler, for embedding
// into an existing mux (ROADMAP item 2's benchserve daemon) or driving
// in-process from tests without a socket.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		var events []obsv.Event
		var lost uint64
		note := "flight window full: oldest events overwritten"
		if r.URL.Query().Get("which") == "failure" {
			dump, _ := h.LastDump()
			if dump == nil {
				http.Error(w, "no failure dump recorded", http.StatusNotFound)
				return
			}
			events, lost = dump.Events, dump.Overwritten
			note = "failure dump (" + dump.Reason + "): oldest events overwritten"
		} else if h != nil && h.Flight != nil {
			events, lost = h.Flight.Snapshot()
		}
		if lost > 0 {
			// Keep-newest ring: the hole is before the first retained event.
			var ts float64
			if len(events) > 0 {
				ts = events[0].TS
			}
			events = append([]obsv.Event{obsv.TruncationEvent(int(lost), note, ts)}, events...)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = obsv.WriteChromeTrace(w, events, h.Profiles())
	})
	mux.HandleFunc("/debug/profile", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, p := range h.Profiles() {
			stack := p.Name
			if p.Track != "" {
				stack = p.Track + ";" + p.Name
			}
			if c := int64(p.SelfCycles + 0.5); c > 0 {
				fmt.Fprintf(w, "%s %d\n", stack, c)
			}
		}
	})
	mux.HandleFunc("/debug/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/debug/")
		fn := h.Provider(name)
		if fn == nil {
			known := providerNames(h)
			http.Error(w, fmt.Sprintf("no state provider %q (published: %s)",
				name, strings.Join(known, ", ")), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fn()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

func providerNames(h *Hub) []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	names := make([]string, 0, len(h.providers))
	for n := range h.providers {
		names = append(names, n)
	}
	h.mu.Unlock()
	sort.Strings(names)
	return names
}

// Start binds addr and serves the hub's telemetry until Close. It returns
// once the listener is live; use Addr for the bound address when addr
// used port 0.
func Start(h *Hub, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		hub: h,
		ln:  ln,
		srv: &http.Server{
			Handler: Handler(h),
			// Every route serves a bounded in-memory snapshot, so generous
			// write budgets only guard against stuck clients, not slow
			// handlers. Keep-alives are reaped so a drain isn't held open
			// by idle scrapers.
			ReadHeaderTimeout: 5 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       60 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's bound address (e.g. "127.0.0.1:43117").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops accepting connections and waits for in-flight handlers
// to finish, up to ctx's deadline; on expiry it falls back to Close so
// the caller's drain budget is always honored. Safe on a nil server.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		closeErr := s.srv.Close()
		if closeErr != nil {
			return closeErr
		}
		return err
	}
	return nil
}
