package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/ir"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
	"wasmbench/internal/wasmvm"
)

// Cell is one measurement cell: a benchmark compiled with a configuration
// and measured on a profile.
type Cell struct {
	Bench   *benchsuite.Benchmark
	Size    benchsuite.Size
	Level   ir.OptLevel
	Lang    string // "wasm" or "js"
	Profile *browser.Profile
	// Toolchain defaults to Cheerp.
	Toolchain compiler.Toolchain
}

// Label renders a compact cell identifier, e.g. "atax/M/wasm/-O2@chrome-desktop".
func (c Cell) Label() string {
	return fmt.Sprintf("%s/%v/%s/%v@%s", c.Bench.Name, c.Size, c.Lang, c.Level, c.Profile.Name())
}

// CellResult is the measured outcome.
type CellResult struct {
	Cell
	Meas *browser.Measurement
	Art  *compiler.Artifact
	Err  error
}

// cellOptions renders the cell's full compiler configuration.
func cellOptions(c Cell) compiler.Options {
	targets := []compiler.Target{compiler.TargetWasm}
	if c.Lang == "js" {
		targets = []compiler.Target{compiler.TargetJS}
	}
	return compiler.Options{
		Opt:        c.Level,
		Toolchain:  c.Toolchain,
		Defines:    c.Bench.Defines(c.Size),
		HeapLimit:  c.Bench.HeapLimitBytes(c.Size),
		ModuleName: c.Bench.Name,
		Targets:    targets,
	}
}

// Fingerprint returns the cell's content-addressed compilation key:
// cells that differ only in browser profile share a fingerprint, and
// therefore share one compiled artifact under an ArtifactCache.
func (c Cell) Fingerprint() string {
	return compiler.Fingerprint(c.Bench.Source, cellOptions(c))
}

// CompileCell builds the artifact for a cell. Every call compiles from
// scratch; the parallel harness deduplicates identical compilations with a
// content-addressed ArtifactCache (on by default in RunCellsWith, shared
// across the worker pool — see RunOptions.Cache / DisableCache), so each
// unique artifact compiles exactly once no matter how many profiles
// measure it.
func CompileCell(c Cell) (*compiler.Artifact, error) {
	return compiler.Compile(c.Bench.Source, cellOptions(c))
}

// RunCell compiles and measures one cell.
func RunCell(c Cell) CellResult {
	r, _, _, _ := runCellTimed(c, nil)
	return r
}

// runCellTimed is RunCell with the wall-clock compile/measure split the
// harness metrics report. A non-nil cache deduplicates the compile step;
// hit reports that the artifact came from it without compiling here.
func runCellTimed(c Cell, cache *ArtifactCache) (res CellResult, compile, measure time.Duration, hit bool) {
	r, info := runAttempt(c, cache, RunOptions{}, "", nil)
	return r, info.compile, info.measure, info.hit
}

// RunOptions configures a parallel harness run.
type RunOptions struct {
	// Workers is the pool size; <=0 selects the default
	// (min(NumCPU, 8)).
	Workers int
	// Tracer, when set, receives a KindCellStart / KindCellDone pair per
	// cell on the "harness" track. Unlike VM events, these carry
	// wall-clock timestamps (nanoseconds since the run began), so they
	// are not byte-reproducible across runs.
	Tracer obsv.Tracer
	// OnProgress, when set, is called after every finished cell with the
	// completion count, the total, and the cell's result. Calls are
	// serialized but arrive in completion order, not submission order.
	OnProgress func(done, total int, r CellResult)
	// Cache is the artifact compile cache shared by the worker pool. nil
	// creates a fresh cache for the run; pass an explicit cache to share
	// compiled artifacts across several runs. Ignored when DisableCache
	// is set.
	Cache *ArtifactCache
	// DisableCache forces every cell to cold-compile its artifact — the
	// opt-out for compile-time measurement studies. Measurements are
	// unaffected either way; only wall-clock compile time changes.
	DisableCache bool
	// VMPool serves Wasm measurements from per-artifact instance pools:
	// cells that differ only in browser profile share one pool, cloning VMs
	// from a post-init snapshot and recycling them with Reset instead of
	// re-running module init per cell. Like the artifact cache, this is
	// wall-clock-only — virtual metrics are byte-identical to cold runs by
	// the wasmvm snapshot contract. Saturated pools fall back to cold
	// instantiation, never blocking a worker.
	VMPool bool
	// VMPoolSize bounds each artifact pool's live instances; <=0 selects
	// the default (workers + 1).
	VMPoolSize int
	// SharedVMPools, when set (and VMPool is true), serves Wasm
	// measurements from a caller-owned pool set shared across many runs —
	// the warm-instance substrate a long-running server keeps across
	// requests. nil creates a fresh pool set per run as before.
	SharedVMPools *VMPools
	// vmPools is the pool set actually used; pre-seeded by tests and
	// benchmarks that share pools across runs, created fresh per run
	// otherwise.
	vmPools *vmPoolSet

	// Context, when set, cancels the run cooperatively: cells not yet
	// started fail fast with ErrCellCanceled, in-flight attempts are
	// abandoned (their goroutines exit on their own, aborting injected
	// stalls), and retry backoff sleeps wake early. nil means
	// context.Background() — no cancelation. Deadlines carried by the
	// context compose with the per-cell Deadline budget.
	Context context.Context

	// --- Resilience (all zero values preserve the pre-resilience
	// behavior exactly; see resilience.go) ---

	// Deadline is the wall-clock budget per cell attempt. When exceeded,
	// the attempt is abandoned with ErrCellDeadline; its goroutine exits on
	// its own (the result channel is buffered) and any injected stall it is
	// sleeping in is cancelled. 0 means no deadline.
	Deadline time.Duration
	// StepLimit bounds each measurement's dynamic instruction count (a
	// virtual-cycle budget against runaway cells). 0 keeps profile limits.
	StepLimit uint64
	// Retries is how many times a failed cell is re-attempted (0 = one
	// attempt only).
	Retries int
	// RetryBackoff is the base delay before retry k: base·2^(k−1) plus
	// deterministic jitter seeded from the fault plan. 0 retries instantly.
	RetryBackoff time.Duration
	// DegradeOnRetry steps retries down the degradation ladder
	// (wasm: noreg → noreg+nofuse → O0; js: nojit → O0) instead of
	// repeating the identical configuration.
	DegradeOnRetry bool
	// QuarantineAfter skips further cells of a benchmark after that many
	// consecutive failures (counting retries exhausted, not attempts).
	// 0 disables quarantine.
	QuarantineAfter int
	// Faults is the deterministic fault-injection plan threaded through
	// the toolchain and both engines. nil (the default) is fully inert.
	Faults *faultinject.Plan
	// Checkpoint, when set, restores previously completed cells instead of
	// re-running them and records each new success as it finishes.
	Checkpoint *Checkpoint
	// Telemetry, when set, publishes the run live: harness instruments
	// (cell latency histograms, queue-depth gauge, robustness counters) on
	// the hub's registry, an in-flight cell table as the hub's "cells"
	// provider, merged VM profiles, harness trace events teed into the
	// hub's flight recorder, and a flight dump frozen on every cell
	// failure. nil (the default) changes nothing: results and metrics are
	// byte-identical with telemetry on or off.
	Telemetry *telemetry.Hub
}

// DefaultWorkers returns the harness's default pool size.
func DefaultWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunCells executes cells in parallel with the default pool size
// (virtual-time metrics are deterministic and independent across VM
// instances).
func RunCells(cells []Cell) []CellResult {
	res, _ := RunCellsWith(cells, RunOptions{})
	return res
}

// RunCellsN executes cells with an explicit worker count.
func RunCellsN(cells []Cell, workers int) []CellResult {
	res, _ := RunCellsWith(cells, RunOptions{Workers: workers})
	return res
}

// RunCellsWith executes cells under opt and reports per-cell wall-time
// metrics: compile/measure split, worker assignment, queue depth at
// pickup, compile-cache counters, and overall worker utilization.
func RunCellsWith(cells []Cell, opt RunOptions) ([]CellResult, *obsv.RunMetrics) {
	out := make([]CellResult, len(cells))
	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	metrics := &obsv.RunMetrics{
		Workers: workers,
		Cells:   make([]obsv.CellMetric, len(cells)),
	}
	if len(cells) == 0 {
		return out, metrics
	}
	cache := opt.Cache
	if cache == nil && !opt.DisableCache {
		cache = NewArtifactCache()
	}
	if opt.DisableCache {
		cache = nil
	}
	// Snapshot so a caller-shared cache reports this run's delta only.
	var cacheBase CacheStats
	if cache != nil {
		cacheBase = cache.Stats()
	}
	var faultBase int
	if opt.Faults != nil {
		faultBase = opt.Faults.TotalFired()
	}
	if opt.VMPool && opt.vmPools == nil {
		if opt.SharedVMPools != nil {
			opt.vmPools = opt.SharedVMPools.set
		} else {
			size := opt.VMPoolSize
			if size <= 0 {
				size = workers + 1
			}
			var pi *telemetry.PoolInstruments
			if opt.Telemetry != nil {
				pi = telemetry.NewPoolInstruments(opt.Telemetry.Registry())
			}
			opt.vmPools = newVMPoolSet(size, pi)
		}
	}
	// Delta-base so pools shared across runs report this run's checkouts.
	var vmPoolBase wasmvm.PoolStats
	if opt.vmPools != nil {
		vmPoolBase = opt.vmPools.stats()
	}
	quar := newQuarantine(opt.QuarantineAfter)
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}

	start := time.Now()
	// Arm live telemetry (nil hub → nil tracker; every hook is then a
	// no-op) and tee harness trace events into the hub's flight recorder.
	rt := newRunTelemetry(opt.Telemetry, cells, workers, cache, opt.vmPools, opt.Faults, start)
	if rt != nil {
		opt.Tracer = obsv.Multi(opt.Tracer, opt.Telemetry.Tracer())
	}

	// Restore checkpointed cells before enqueueing: resumed cells never
	// reach a worker, so a resumed run measures only what is missing.
	resumed := make([]bool, len(cells))
	if opt.Checkpoint != nil {
		for i, c := range cells {
			if r, ok := opt.Checkpoint.Lookup(c); ok {
				out[i] = r
				resumed[i] = true
				rt.resumed(i)
				metrics.Cells[i] = obsv.CellMetric{Label: c.Label(), Resumed: true}
				if r.Meas != nil && r.Meas.Result != nil {
					metrics.Cells[i].TierUps = r.Meas.Result.TierUps
					metrics.Cells[i].BasicCycles = r.Meas.Result.WasmStats.BasicCycles
					metrics.Cells[i].OptCycles = r.Meas.Result.WasmStats.OptCycles
					metrics.Cells[i].AOTCycles = r.Meas.Result.WasmStats.AOTCycles
				}
			}
		}
	}

	// The index channel is pre-filled and buffered so the sender never
	// blocks: workers pull until the channel drains, whatever the pool
	// size.
	idx := make(chan int, len(cells))
	pending := 0
	for i := range cells {
		if !resumed[i] {
			idx <- i
			pending++
		}
	}
	close(idx)
	rt.enqueued(pending)

	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				// len(idx) no longer counts the index just pulled, so add
				// it back: QueueDepth is the depth at pickup, including
				// this cell (a single worker draining k cells records
				// k, k-1, …, 1).
				depth := len(idx) + 1
				cellStart := time.Since(start)
				c := cells[i]
				if opt.Tracer != nil {
					opt.Tracer.Emit(obsv.Event{Kind: obsv.KindCellStart,
						TS: float64(cellStart), Name: c.Label(),
						Track: "harness", A: float64(worker), B: float64(depth)})
				}
				rt.cellStart(i, worker)
				r, oc := runCellResilient(ctx, c, opt, cache, quar, start)
				wall := time.Since(start) - cellStart
				out[i] = r
				cm := obsv.CellMetric{
					Label:       c.Label(),
					Worker:      worker,
					QueueDepth:  depth,
					Start:       cellStart,
					Compile:     oc.compile,
					Measure:     oc.measure,
					Wall:        wall,
					Failed:      r.Err != nil,
					CacheHit:    oc.hit,
					Attempts:    oc.attempts,
					Degraded:    oc.degraded,
					Quarantined: oc.quarantined,
				}
				if r.Meas != nil && r.Meas.Result != nil {
					cm.TierUps = r.Meas.Result.TierUps
					cm.BasicCycles = r.Meas.Result.WasmStats.BasicCycles
					cm.OptCycles = r.Meas.Result.WasmStats.OptCycles
					cm.AOTCycles = r.Meas.Result.WasmStats.AOTCycles
					cm.VMPooled = r.Meas.Result.VMPooled
					cm.VMPoolHit = r.Meas.Result.VMPoolRecycled
				}
				metrics.Cells[i] = cm
				rt.cellDone(i, r, cm)
				if r.Err == nil && opt.Checkpoint != nil {
					// Checkpoint write failures are non-fatal: the sweep's
					// results are still valid, only resumability suffers.
					_ = opt.Checkpoint.Record(r)
				}
				if opt.Tracer != nil {
					opt.Tracer.Emit(obsv.Event{Kind: obsv.KindCellDone,
						TS: float64(cellStart + wall), Dur: float64(wall),
						Name: c.Label(), Track: "harness", A: float64(worker)})
				}
				if opt.OnProgress != nil {
					// The lock is held across the callback so calls are
					// serialized, as the OnProgress contract documents.
					mu.Lock()
					done++
					opt.OnProgress(done, pending, r)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	metrics.Span = time.Since(start)
	if cache != nil {
		s := cache.Stats()
		metrics.CacheEnabled = true
		metrics.CacheHits = s.Hits - cacheBase.Hits
		metrics.CacheMisses = s.Misses - cacheBase.Misses
		metrics.CacheDedupWaits = s.DedupWaits - cacheBase.DedupWaits
	}
	if opt.vmPools != nil {
		s := opt.vmPools.stats()
		metrics.VMPoolEnabled = true
		metrics.VMPoolHits = s.Hits - vmPoolBase.Hits
		metrics.VMPoolMisses = s.Misses - vmPoolBase.Misses
		metrics.VMPoolRecycles = s.Recycles - vmPoolBase.Recycles
		metrics.VMPoolColdFallbacks = s.ColdFallbacks - vmPoolBase.ColdFallbacks
	}
	// Aggregate robustness counters from the per-cell metrics (after
	// wg.Wait, so no extra synchronization is needed). All remain zero on
	// a fault-free run, keeping Render's output byte-identical.
	if opt.Faults != nil {
		metrics.FaultsInjected = opt.Faults.TotalFired() - faultBase
	}
	for _, cm := range metrics.Cells {
		if cm.Attempts > 1 {
			metrics.Retries += cm.Attempts - 1
		}
		if cm.Degraded != "" {
			metrics.Degraded++
		}
		if cm.Quarantined {
			metrics.Quarantined++
		}
	}
	return out, metrics
}

// FirstError returns the first cell error, if any.
func FirstError(results []CellResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// AllErrors returns every cell error, in cell order.
func AllErrors(results []CellResult) []error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errs
}
