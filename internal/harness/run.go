package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
	"wasmbench/internal/obsv"
)

// Cell is one measurement cell: a benchmark compiled with a configuration
// and measured on a profile.
type Cell struct {
	Bench   *benchsuite.Benchmark
	Size    benchsuite.Size
	Level   ir.OptLevel
	Lang    string // "wasm" or "js"
	Profile *browser.Profile
	// Toolchain defaults to Cheerp.
	Toolchain compiler.Toolchain
}

// Label renders a compact cell identifier, e.g. "atax/M/wasm/-O2@chrome-desktop".
func (c Cell) Label() string {
	return fmt.Sprintf("%s/%v/%s/%v@%s", c.Bench.Name, c.Size, c.Lang, c.Level, c.Profile.Name())
}

// CellResult is the measured outcome.
type CellResult struct {
	Cell
	Meas *browser.Measurement
	Art  *compiler.Artifact
	Err  error
}

// cellOptions renders the cell's full compiler configuration.
func cellOptions(c Cell) compiler.Options {
	targets := []compiler.Target{compiler.TargetWasm}
	if c.Lang == "js" {
		targets = []compiler.Target{compiler.TargetJS}
	}
	return compiler.Options{
		Opt:        c.Level,
		Toolchain:  c.Toolchain,
		Defines:    c.Bench.Defines(c.Size),
		HeapLimit:  c.Bench.HeapLimitBytes(c.Size),
		ModuleName: c.Bench.Name,
		Targets:    targets,
	}
}

// Fingerprint returns the cell's content-addressed compilation key:
// cells that differ only in browser profile share a fingerprint, and
// therefore share one compiled artifact under an ArtifactCache.
func (c Cell) Fingerprint() string {
	return compiler.Fingerprint(c.Bench.Source, cellOptions(c))
}

// CompileCell builds the artifact for a cell. Every call compiles from
// scratch; the parallel harness deduplicates identical compilations with a
// content-addressed ArtifactCache (on by default in RunCellsWith, shared
// across the worker pool — see RunOptions.Cache / DisableCache), so each
// unique artifact compiles exactly once no matter how many profiles
// measure it.
func CompileCell(c Cell) (*compiler.Artifact, error) {
	return compiler.Compile(c.Bench.Source, cellOptions(c))
}

// RunCell compiles and measures one cell.
func RunCell(c Cell) CellResult {
	r, _, _, _ := runCellTimed(c, nil)
	return r
}

// runCellTimed is RunCell with the wall-clock compile/measure split the
// harness metrics report. A non-nil cache deduplicates the compile step;
// hit reports that the artifact came from it without compiling here.
func runCellTimed(c Cell, cache *ArtifactCache) (res CellResult, compile, measure time.Duration, hit bool) {
	t0 := time.Now()
	var art *compiler.Artifact
	var err error
	if cache != nil {
		art, hit, err = cache.CompileCell(c)
	} else {
		art, err = CompileCell(c)
	}
	compile = time.Since(t0)
	if err != nil {
		return CellResult{Cell: c, Err: fmt.Errorf("%s/%v: %w", c.Bench.Name, c.Size, err)}, compile, 0, hit
	}
	t1 := time.Now()
	var m *browser.Measurement
	if c.Lang == "js" {
		m, err = c.Profile.MeasureJS(art)
	} else {
		m, err = c.Profile.MeasureWasm(art)
	}
	measure = time.Since(t1)
	if err != nil {
		err = fmt.Errorf("%s/%v/%s: %w", c.Bench.Name, c.Size, c.Lang, err)
	}
	return CellResult{Cell: c, Meas: m, Art: art, Err: err}, compile, measure, hit
}

// RunOptions configures a parallel harness run.
type RunOptions struct {
	// Workers is the pool size; <=0 selects the default
	// (min(NumCPU, 8)).
	Workers int
	// Tracer, when set, receives a KindCellStart / KindCellDone pair per
	// cell on the "harness" track. Unlike VM events, these carry
	// wall-clock timestamps (nanoseconds since the run began), so they
	// are not byte-reproducible across runs.
	Tracer obsv.Tracer
	// OnProgress, when set, is called after every finished cell with the
	// completion count, the total, and the cell's result. Calls are
	// serialized but arrive in completion order, not submission order.
	OnProgress func(done, total int, r CellResult)
	// Cache is the artifact compile cache shared by the worker pool. nil
	// creates a fresh cache for the run; pass an explicit cache to share
	// compiled artifacts across several runs. Ignored when DisableCache
	// is set.
	Cache *ArtifactCache
	// DisableCache forces every cell to cold-compile its artifact — the
	// opt-out for compile-time measurement studies. Measurements are
	// unaffected either way; only wall-clock compile time changes.
	DisableCache bool
}

// DefaultWorkers returns the harness's default pool size.
func DefaultWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunCells executes cells in parallel with the default pool size
// (virtual-time metrics are deterministic and independent across VM
// instances).
func RunCells(cells []Cell) []CellResult {
	res, _ := RunCellsWith(cells, RunOptions{})
	return res
}

// RunCellsN executes cells with an explicit worker count.
func RunCellsN(cells []Cell, workers int) []CellResult {
	res, _ := RunCellsWith(cells, RunOptions{Workers: workers})
	return res
}

// RunCellsWith executes cells under opt and reports per-cell wall-time
// metrics: compile/measure split, worker assignment, queue depth at
// pickup, compile-cache counters, and overall worker utilization.
func RunCellsWith(cells []Cell, opt RunOptions) ([]CellResult, *obsv.RunMetrics) {
	out := make([]CellResult, len(cells))
	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	metrics := &obsv.RunMetrics{
		Workers: workers,
		Cells:   make([]obsv.CellMetric, len(cells)),
	}
	if len(cells) == 0 {
		return out, metrics
	}
	cache := opt.Cache
	if cache == nil && !opt.DisableCache {
		cache = NewArtifactCache()
	}
	if opt.DisableCache {
		cache = nil
	}
	// Snapshot so a caller-shared cache reports this run's delta only.
	var cacheBase CacheStats
	if cache != nil {
		cacheBase = cache.Stats()
	}

	// The index channel is pre-filled and buffered so the sender never
	// blocks: workers pull until the channel drains, whatever the pool
	// size.
	idx := make(chan int, len(cells))
	for i := range cells {
		idx <- i
	}
	close(idx)

	var (
		mu    sync.Mutex
		done  int
		wg    sync.WaitGroup
		start = time.Now()
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				// len(idx) no longer counts the index just pulled, so add
				// it back: QueueDepth is the depth at pickup, including
				// this cell (a single worker draining k cells records
				// k, k-1, …, 1).
				depth := len(idx) + 1
				cellStart := time.Since(start)
				c := cells[i]
				if opt.Tracer != nil {
					opt.Tracer.Emit(obsv.Event{Kind: obsv.KindCellStart,
						TS: float64(cellStart), Name: c.Label(),
						Track: "harness", A: float64(worker), B: float64(depth)})
				}
				r, compile, measure, hit := runCellTimed(c, cache)
				wall := time.Since(start) - cellStart
				out[i] = r
				cm := obsv.CellMetric{
					Label:      c.Label(),
					Worker:     worker,
					QueueDepth: depth,
					Start:      cellStart,
					Compile:    compile,
					Measure:    measure,
					Wall:       wall,
					Failed:     r.Err != nil,
					CacheHit:   hit,
				}
				if r.Meas != nil && r.Meas.Result != nil {
					cm.TierUps = r.Meas.Result.TierUps
					cm.BasicCycles = r.Meas.Result.WasmStats.BasicCycles
					cm.OptCycles = r.Meas.Result.WasmStats.OptCycles
				}
				metrics.Cells[i] = cm
				if opt.Tracer != nil {
					opt.Tracer.Emit(obsv.Event{Kind: obsv.KindCellDone,
						TS: float64(cellStart + wall), Dur: float64(wall),
						Name: c.Label(), Track: "harness", A: float64(worker)})
				}
				if opt.OnProgress != nil {
					mu.Lock()
					done++
					n := done
					mu.Unlock()
					opt.OnProgress(n, len(cells), r)
				}
			}
		}(w)
	}
	wg.Wait()
	metrics.Span = time.Since(start)
	if cache != nil {
		s := cache.Stats()
		metrics.CacheEnabled = true
		metrics.CacheHits = s.Hits - cacheBase.Hits
		metrics.CacheMisses = s.Misses - cacheBase.Misses
		metrics.CacheDedupWaits = s.DedupWaits - cacheBase.DedupWaits
	}
	return out, metrics
}

// FirstError returns the first cell error, if any.
func FirstError(results []CellResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// AllErrors returns every cell error, in cell order.
func AllErrors(results []CellResult) []error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errs
}
