package harness

import (
	"fmt"
	"runtime"
	"sync"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
)

// Cell is one measurement cell: a benchmark compiled with a configuration
// and measured on a profile.
type Cell struct {
	Bench   *benchsuite.Benchmark
	Size    benchsuite.Size
	Level   ir.OptLevel
	Lang    string // "wasm" or "js"
	Profile *browser.Profile
	// Toolchain defaults to Cheerp.
	Toolchain compiler.Toolchain
}

// CellResult is the measured outcome.
type CellResult struct {
	Cell
	Meas *browser.Measurement
	Art  *compiler.Artifact
	Err  error
}

// CompileCell builds the artifact for a cell (cached per (bench, size,
// level, toolchain) by the caller when needed; compilation is cheap).
func CompileCell(c Cell) (*compiler.Artifact, error) {
	targets := []compiler.Target{compiler.TargetWasm}
	if c.Lang == "js" {
		targets = []compiler.Target{compiler.TargetJS}
	}
	return compiler.Compile(c.Bench.Source, compiler.Options{
		Opt:        c.Level,
		Toolchain:  c.Toolchain,
		Defines:    c.Bench.Defines(c.Size),
		HeapLimit:  c.Bench.HeapLimitBytes(c.Size),
		ModuleName: c.Bench.Name,
		Targets:    targets,
	})
}

// RunCell compiles and measures one cell.
func RunCell(c Cell) CellResult {
	art, err := CompileCell(c)
	if err != nil {
		return CellResult{Cell: c, Err: fmt.Errorf("%s/%v: %w", c.Bench.Name, c.Size, err)}
	}
	var m *browser.Measurement
	if c.Lang == "js" {
		m, err = c.Profile.MeasureJS(art)
	} else {
		m, err = c.Profile.MeasureWasm(art)
	}
	if err != nil {
		err = fmt.Errorf("%s/%v/%s: %w", c.Bench.Name, c.Size, c.Lang, err)
	}
	return CellResult{Cell: c, Meas: m, Art: art, Err: err}
}

// RunCells executes cells in parallel (virtual-time metrics are
// deterministic and independent across VM instances).
func RunCells(cells []Cell) []CellResult {
	out := make([]CellResult, len(cells))
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = RunCell(cells[i])
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// FirstError returns the first cell error, if any.
func FirstError(results []CellResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
