package harness

// Checkpoint persists completed cells so an interrupted sweep can resume
// without re-measuring. The file is append-only JSONL — one record per
// successful cell, written as cells finish — so a crash mid-run loses at
// most the in-flight cells; a truncated final line (torn write) is skipped
// on load. Records are keyed by cell label and guarded by the cell's
// compilation fingerprint: if the benchmark source or configuration
// changed since the checkpoint was written, the stale record is ignored
// and the cell re-runs.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/wasmvm"
)

// checkpointRecord is the serialized form of one completed cell. It
// captures the deterministic measurement fields the result tables report;
// the artifact and output events are not persisted (a resumed cell has
// Art == nil).
type checkpointRecord struct {
	Label       string  `json:"label"`
	Fingerprint string  `json:"fp"`
	ExecMS      float64 `json:"exec_ms"`
	MemoryKB    float64 `json:"memory_kb"`
	Exit        int32   `json:"exit"`
	Cycles      float64 `json:"cycles"`
	Steps       uint64  `json:"steps"`
	MemoryBytes uint64  `json:"memory_bytes"`
	ExternBytes uint64  `json:"external_bytes,omitempty"`
	MemChecksum uint64  `json:"mem_checksum,omitempty"`
	GrowOps     int     `json:"grow_ops,omitempty"`
	GCs         int     `json:"gcs,omitempty"`
	TierUps     int     `json:"tier_ups,omitempty"`
	BasicCycles float64 `json:"basic_cycles,omitempty"`
	OptCycles   float64 `json:"opt_cycles,omitempty"`
	AOTCycles   float64 `json:"aot_cycles,omitempty"`
}

// Checkpoint is a resumable record of completed cells. Safe for
// concurrent use by the worker pool.
type Checkpoint struct {
	mu   sync.Mutex
	path string
	f    *os.File
	done map[string]checkpointRecord
}

// OpenCheckpoint opens (creating if absent) a checkpoint file, loading any
// previously recorded cells. Corrupt or truncated lines — e.g. the torn
// tail of a crashed run — are skipped, not fatal.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	cp := &Checkpoint{path: path, done: make(map[string]checkpointRecord)}
	if data, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			var rec checkpointRecord
			if json.Unmarshal(sc.Bytes(), &rec) != nil || rec.Label == "" {
				continue
			}
			cp.done[rec.Label] = rec
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("harness: open checkpoint: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: open checkpoint: %w", err)
	}
	cp.f = f
	return cp, nil
}

// Lookup returns the checkpointed result for a cell, or ok=false if the
// cell was not recorded or its fingerprint no longer matches (source or
// configuration changed since the checkpoint was written).
func (cp *Checkpoint) Lookup(c Cell) (CellResult, bool) {
	if cp == nil {
		return CellResult{}, false
	}
	cp.mu.Lock()
	rec, ok := cp.done[c.Label()]
	cp.mu.Unlock()
	if !ok || rec.Fingerprint != c.Fingerprint() {
		return CellResult{}, false
	}
	res := &compiler.Result{
		Exit:          rec.Exit,
		Cycles:        rec.Cycles,
		Steps:         rec.Steps,
		MemoryBytes:   rec.MemoryBytes,
		ExternalBytes: rec.ExternBytes,
		MemChecksum:   rec.MemChecksum,
		GrowOps:       rec.GrowOps,
		GCs:           rec.GCs,
		TierUps:       rec.TierUps,
		WasmStats: wasmvm.Stats{
			Steps:       rec.Steps,
			TierUps:     rec.TierUps,
			GrowOps:     rec.GrowOps,
			BasicCycles: rec.BasicCycles,
			OptCycles:   rec.OptCycles,
			AOTCycles:   rec.AOTCycles,
		},
	}
	return CellResult{
		Cell: c,
		Meas: &browser.Measurement{ExecMS: rec.ExecMS, MemoryKB: rec.MemoryKB, Result: res},
	}, true
}

// Record appends a successful cell to the checkpoint. Failed cells are
// never recorded — they must re-run on resume.
func (cp *Checkpoint) Record(r CellResult) error {
	if cp == nil || r.Err != nil || r.Meas == nil || r.Meas.Result == nil {
		return nil
	}
	mr := r.Meas.Result
	rec := checkpointRecord{
		Label:       r.Label(),
		Fingerprint: r.Fingerprint(),
		ExecMS:      r.Meas.ExecMS,
		MemoryKB:    r.Meas.MemoryKB,
		Exit:        mr.Exit,
		Cycles:      mr.Cycles,
		Steps:       mr.Steps,
		MemoryBytes: mr.MemoryBytes,
		ExternBytes: mr.ExternalBytes,
		MemChecksum: mr.MemChecksum,
		GrowOps:     mr.GrowOps,
		GCs:         mr.GCs,
		TierUps:     mr.TierUps,
		BasicCycles: mr.WasmStats.BasicCycles,
		OptCycles:   mr.WasmStats.OptCycles,
		AOTCycles:   mr.WasmStats.AOTCycles,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.done[rec.Label] = rec
	if cp.f != nil {
		if _, err := cp.f.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("harness: checkpoint write: %w", err)
		}
	}
	return nil
}

// Len returns the number of recorded cells.
func (cp *Checkpoint) Len() int {
	if cp == nil {
		return 0
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.done)
}

// Close flushes and closes the underlying file.
func (cp *Checkpoint) Close() error {
	if cp == nil || cp.f == nil {
		return nil
	}
	err := cp.f.Close()
	cp.f = nil
	return err
}
