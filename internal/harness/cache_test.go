package harness

import (
	"math"
	"sync"
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/ir"
)

func mustBench(t *testing.T, name string) *benchsuite.Benchmark {
	t.Helper()
	b, err := benchsuite.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// profileGrid returns one cell per profile for the same (bench, size, opt)
// point — the compile-once/measure-many shape the cache exists for.
func profileGrid(t *testing.T, name string, profiles []*browser.Profile) []Cell {
	t.Helper()
	b := mustBench(t, name)
	cells := make([]Cell, 0, len(profiles))
	for _, p := range profiles {
		cells = append(cells, Cell{
			Bench: b, Size: benchsuite.XS, Level: ir.O2, Lang: "wasm", Profile: p,
		})
	}
	return cells
}

func TestFingerprintStability(t *testing.T) {
	cells := profileGrid(t, "atax", browser.AllProfiles())
	fp := cells[0].Fingerprint()
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
	for _, c := range cells[1:] {
		// Profiles don't feed the compiler, so the whole grid shares a key.
		if got := c.Fingerprint(); got != fp {
			t.Errorf("%s: fingerprint %s != %s", c.Label(), got, fp)
		}
	}
	other := Cell{Bench: mustBench(t, "atax"), Size: benchsuite.S, Level: ir.O2,
		Lang: "wasm", Profile: browser.Chrome(browser.Desktop)}
	if other.Fingerprint() == fp {
		t.Error("different size classes must not share a fingerprint")
	}
	o0 := cells[0]
	o0.Level = ir.O0
	if o0.Fingerprint() == fp {
		t.Error("different opt levels must not share a fingerprint")
	}
}

func TestArtifactCacheSingleflight(t *testing.T) {
	cells := profileGrid(t, "atax", browser.AllProfiles())
	ac := NewArtifactCache()
	var wg sync.WaitGroup
	got := make([]struct {
		art any
		hit bool
		err error
	}, len(cells))
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, hit, err := ac.CompileCell(cells[i])
			got[i].art, got[i].hit, got[i].err = a, hit, err
		}(i)
	}
	wg.Wait()
	for i := range got {
		if got[i].err != nil {
			t.Fatalf("cell %d: %v", i, got[i].err)
		}
		if got[i].art != got[0].art {
			t.Errorf("cell %d compiled a distinct artifact", i)
		}
	}
	s := ac.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 compile for %d concurrent lookups", s.Misses, len(cells))
	}
	if s.Hits+s.DedupWaits != len(cells)-1 {
		t.Errorf("hits+dedupWaits = %d+%d, want %d", s.Hits, s.DedupWaits, len(cells)-1)
	}
	if s.Lookups() != len(cells) {
		t.Errorf("lookups = %d, want %d", s.Lookups(), len(cells))
	}
	if ac.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", ac.Len())
	}
	hits := 0
	for i := range got {
		if got[i].hit {
			hits++
		}
	}
	if hits != len(cells)-1 {
		t.Errorf("hit flags = %d, want %d", hits, len(cells)-1)
	}
}

func TestArtifactCacheCachesErrors(t *testing.T) {
	bad := &benchsuite.Benchmark{
		Name:   "bad",
		Source: "int main( {", // parse error
		Sizes:  map[benchsuite.Size]benchsuite.SizeSpec{benchsuite.XS: {}},
	}
	c := Cell{Bench: bad, Size: benchsuite.XS, Level: ir.O2, Lang: "wasm",
		Profile: browser.Chrome(browser.Desktop)}
	ac := NewArtifactCache()
	_, hit1, err1 := ac.CompileCell(c)
	_, hit2, err2 := ac.CompileCell(c)
	if err1 == nil || err2 == nil {
		t.Fatalf("expected compile errors, got %v / %v", err1, err2)
	}
	if hit1 || !hit2 {
		t.Errorf("hit flags = %v, %v; want false, true", hit1, hit2)
	}
	if err1.Error() != err2.Error() {
		t.Errorf("replayed error differs: %q vs %q", err1, err2)
	}
	if s := ac.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss + 1 hit", s)
	}
}

// TestCacheMeasurementEquivalence is the acceptance check: the same grid
// measured with the cache on and off yields identical Measurements —
// virtual time, memory, and program output are all byte-for-byte equal.
func TestCacheMeasurementEquivalence(t *testing.T) {
	profiles := browser.AllProfiles() // 6 profiles ≥ the required 3
	cells := profileGrid(t, "atax", profiles)
	cached, cm := RunCellsWith(cells, RunOptions{Workers: 2})
	uncached, um := RunCellsWith(cells, RunOptions{Workers: 2, DisableCache: true})
	if err := FirstError(cached); err != nil {
		t.Fatal(err)
	}
	if err := FirstError(uncached); err != nil {
		t.Fatal(err)
	}
	if !cm.CacheEnabled || um.CacheEnabled {
		t.Fatalf("CacheEnabled: cached=%v uncached=%v", cm.CacheEnabled, um.CacheEnabled)
	}
	if cm.CacheMisses != 1 || cm.CacheHits+cm.CacheDedupWaits != len(cells)-1 {
		t.Errorf("cached run counters: %d misses, %d hits, %d dedup-waits",
			cm.CacheMisses, cm.CacheHits, cm.CacheDedupWaits)
	}
	if um.CacheHits+um.CacheMisses+um.CacheDedupWaits != 0 {
		t.Errorf("uncached run reported cache traffic: %+v", um)
	}
	for i := range cells {
		a, b := cached[i].Meas, uncached[i].Meas
		if a.ExecMS != b.ExecMS || a.MemoryKB != b.MemoryKB {
			t.Errorf("%s: cached (%v ms, %v KB) != uncached (%v ms, %v KB)",
				cells[i].Label(), a.ExecMS, a.MemoryKB, b.ExecMS, b.MemoryKB)
		}
		ao, bo := a.Result.OutputStrings(), b.Result.OutputStrings()
		if len(ao) != len(bo) {
			t.Errorf("%s: output length differs", cells[i].Label())
			continue
		}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Errorf("%s: output line %d differs: %q vs %q",
					cells[i].Label(), j, ao[j], bo[j])
			}
		}
	}
}

func TestRunCellsCacheCounters(t *testing.T) {
	cells := profileGrid(t, "atax",
		[]*browser.Profile{browser.Chrome(browser.Desktop),
			browser.Firefox(browser.Desktop), browser.Edge(browser.Desktop)})
	_, m := RunCellsWith(cells, RunOptions{Workers: 1})
	// One worker serializes the grid: first cell compiles, the rest hit.
	if m.CacheMisses != 1 || m.CacheHits != 2 || m.CacheDedupWaits != 0 {
		t.Errorf("counters = %d/%d/%d (miss/hit/wait), want 1/2/0",
			m.CacheMisses, m.CacheHits, m.CacheDedupWaits)
	}
	wantHit := []bool{false, true, true}
	for i, c := range m.Cells {
		if c.CacheHit != wantHit[i] {
			t.Errorf("cell %d CacheHit = %v, want %v", i, c.CacheHit, wantHit[i])
		}
	}
}

func TestSharedCacheAcrossRuns(t *testing.T) {
	cells := profileGrid(t, "atax",
		[]*browser.Profile{browser.Chrome(browser.Desktop), browser.Firefox(browser.Desktop)})
	ac := NewArtifactCache()
	_, m1 := RunCellsWith(cells, RunOptions{Workers: 1, Cache: ac})
	_, m2 := RunCellsWith(cells, RunOptions{Workers: 1, Cache: ac})
	if m1.CacheMisses != 1 || m1.CacheHits != 1 {
		t.Errorf("run 1 counters: %d misses, %d hits; want 1, 1", m1.CacheMisses, m1.CacheHits)
	}
	// The second run is fully warm, and its counters are deltas — the
	// first run's miss must not leak in.
	if m2.CacheMisses != 0 || m2.CacheHits != 2 {
		t.Errorf("run 2 counters: %d misses, %d hits; want 0, 2", m2.CacheMisses, m2.CacheHits)
	}
	if ac.Len() != 1 {
		t.Errorf("cache holds %d artifacts, want 1", ac.Len())
	}
}

func TestQueueDepthCountdown(t *testing.T) {
	cells := profileGrid(t, "atax",
		[]*browser.Profile{browser.Chrome(browser.Desktop), browser.Firefox(browser.Desktop),
			browser.Edge(browser.Desktop), browser.Chrome(browser.Mobile)})
	_, m := RunCellsWith(cells, RunOptions{Workers: 1})
	// A single worker drains in submission order, so the depth at pickup
	// counts the remaining cells including the one picked: k, k-1, …, 1.
	for i, c := range m.Cells {
		if want := len(cells) - i; c.QueueDepth != want {
			t.Errorf("cell %d queue depth = %d, want %d", i, c.QueueDepth, want)
		}
	}
}

func TestRunCellsWithInvariants(t *testing.T) {
	b := mustBench(t, "atax")
	var cells []Cell
	for _, p := range browser.AllProfiles() {
		for _, lang := range []string{"wasm", "js"} {
			cells = append(cells, Cell{Bench: b, Size: benchsuite.XS, Level: ir.O2,
				Lang: lang, Profile: p})
		}
	}
	var ref []float64
	for _, workers := range []int{1, 4, len(cells) + 5} {
		res, m := RunCellsWith(cells, RunOptions{Workers: workers})
		if err := FirstError(res); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.Workers != workers {
			t.Errorf("metrics workers = %d, want %d", m.Workers, workers)
		}
		if len(res) != len(cells) || len(m.Cells) != len(cells) {
			t.Fatalf("workers=%d: %d results, %d metrics", workers, len(res), len(m.Cells))
		}
		for i := range cells {
			// Results and metrics land at the submission index regardless
			// of completion order.
			if res[i].Label() != cells[i].Label() {
				t.Errorf("workers=%d: result %d is %s, want %s",
					workers, i, res[i].Label(), cells[i].Label())
			}
			if m.Cells[i].Label != cells[i].Label() {
				t.Errorf("workers=%d: metric %d is %s, want %s",
					workers, i, m.Cells[i].Label, cells[i].Label())
			}
			if w := m.Cells[i].Worker; w < 0 || w >= workers {
				t.Errorf("workers=%d: cell %d ran on worker %d", workers, i, w)
			}
			if d := m.Cells[i].QueueDepth; d < 1 || d > len(cells) {
				t.Errorf("workers=%d: cell %d queue depth %d out of [1,%d]",
					workers, i, d, len(cells))
			}
		}
		// Virtual-time measurements are deterministic across pool sizes.
		ms := make([]float64, len(res))
		for i, r := range res {
			ms[i] = r.Meas.ExecMS
		}
		if ref == nil {
			ref = ms
			continue
		}
		for i := range ms {
			if ms[i] != ref[i] {
				t.Errorf("workers=%d: cell %d ExecMS %v != single-worker %v",
					workers, i, ms[i], ref[i])
			}
		}
	}
}

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("mean(nil) = %v", m)
	}
	if m := Mean([]float64{1, 2, 3, 4}); math.Abs(m-2.5) > 1e-12 {
		t.Errorf("mean = %v", m)
	}
}

func TestSummarizeEvenLength(t *testing.T) {
	// Even-length input exercises the interpolated quartile branch:
	// for {1,2,3,4}, q1 = 1.75, median = 2.5, q3 = 3.25.
	fn := Summarize([]float64{4, 2, 1, 3})
	if fn.Min != 1 || fn.Max != 4 {
		t.Errorf("extremes: %+v", fn)
	}
	if math.Abs(fn.Q1-1.75) > 1e-12 || math.Abs(fn.Median-2.5) > 1e-12 ||
		math.Abs(fn.Q3-3.25) > 1e-12 {
		t.Errorf("quartiles: %+v", fn)
	}
	if fn.String() == "" {
		t.Error("empty String()")
	}
	if (Summarize(nil) != FiveNum{}) {
		t.Error("summarize(nil) not zero")
	}
}

func TestSplitSpeedAllSlowdowns(t *testing.T) {
	// Wasm uniformly 2× slower than JS: the overall geomean flips to a
	// slowdown factor with AllUp unset.
	s := SplitSpeed([]float64{4, 4}, []float64{2, 2})
	if s.SUCount != 0 || s.SDCount != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.AllUp || math.Abs(s.AllGmean-2) > 1e-9 {
		t.Errorf("all gmean: %+v", s)
	}
	if math.Abs(s.SDGmean-2) > 1e-9 {
		t.Errorf("sd gmean: %+v", s)
	}
}

func TestSplitSpeedSkipsJunk(t *testing.T) {
	// Non-positive samples on either side drop the pair entirely.
	s := SplitSpeed([]float64{0, -1, 1}, []float64{2, 2, 2})
	if s.SUCount != 1 || s.SDCount != 0 {
		t.Errorf("counts after junk: %+v", s)
	}
	if !s.AllUp || math.Abs(s.AllGmean-2) > 1e-9 {
		t.Errorf("all gmean: %+v", s)
	}
	if s := SplitSpeed(nil, nil); s.AllUp || s.AllGmean != 0 {
		t.Errorf("empty split: %+v", s)
	}
}
