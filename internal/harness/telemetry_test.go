package harness

import (
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/ir"
	"wasmbench/internal/telemetry"
)

func teleCells(t *testing.T) []Cell {
	t.Helper()
	b, err := benchsuite.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	return []Cell{
		{Bench: b, Size: benchsuite.XS, Level: ir.O2, Lang: "wasm", Profile: browser.Chrome(browser.Desktop)},
		{Bench: b, Size: benchsuite.XS, Level: ir.O2, Lang: "js", Profile: browser.Chrome(browser.Desktop)},
	}
}

// TestTelemetryByteIdentity is the zero-perturbation contract: attaching a
// telemetry hub to a run must not change any virtual metric. Instruments
// only mirror what the VMs already count — they never feed the clock.
func TestTelemetryByteIdentity(t *testing.T) {
	base, _ := RunCellsWith(teleCells(t), RunOptions{Workers: 1})
	hub := telemetry.NewHub(256)
	instrumented, _ := RunCellsWith(teleCells(t), RunOptions{Workers: 1, Telemetry: hub})

	if len(base) != len(instrumented) {
		t.Fatalf("result count %d vs %d", len(base), len(instrumented))
	}
	for i := range base {
		a, b := base[i], instrumented[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("cell %d errors: %v / %v", i, a.Err, b.Err)
		}
		if a.Meas.Result.Cycles != b.Meas.Result.Cycles {
			t.Errorf("cell %d cycles: %v without telemetry, %v with",
				i, a.Meas.Result.Cycles, b.Meas.Result.Cycles)
		}
		if a.Meas.Result.Steps != b.Meas.Result.Steps {
			t.Errorf("cell %d steps: %d without telemetry, %d with",
				i, a.Meas.Result.Steps, b.Meas.Result.Steps)
		}
		if a.Meas.Result.MemoryBytes != b.Meas.Result.MemoryBytes {
			t.Errorf("cell %d memory: %d without telemetry, %d with",
				i, a.Meas.Result.MemoryBytes, b.Meas.Result.MemoryBytes)
		}
	}
}

// TestTelemetrySweepState verifies the hub reflects the run that just
// completed: sweep state accounts for every cell and the instruments saw
// the work the harness reports.
func TestTelemetrySweepState(t *testing.T) {
	hub := telemetry.NewHub(256)
	cells := teleCells(t)
	// VM instruments attach at the browser profile (the harness only owns
	// its own layer); this mirrors what benchtab -telemetry does.
	for _, c := range cells {
		c.Profile.SetInstruments(hub.Registry())
	}
	results, _ := RunCellsWith(cells, RunOptions{Workers: 2, Telemetry: hub})
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	fn := hub.Provider("cells")
	if fn == nil {
		t.Fatal("run did not publish the cells provider")
	}
	state, ok := fn().(SweepState)
	if !ok {
		t.Fatalf("cells provider returned %T", fn())
	}
	if state.Total != 2 || state.Done != 2 || state.Failed != 0 {
		t.Fatalf("sweep state = %+v", state)
	}
	for _, c := range state.Cells {
		if c.Status != "ok" || c.WallMs <= 0 {
			t.Fatalf("cell state = %+v", c)
		}
	}

	snap := hub.Registry().Snapshot()
	byName := map[string]telemetry.SnapshotMetric{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	if v := byName["harness_cells_done_total"].Value; v != 2 {
		t.Errorf("harness_cells_done_total = %v, want 2", v)
	}
	if byName["wasm_steps_total"].Value <= 0 {
		t.Error("wasm_steps_total not populated")
	}
	if byName["js_steps_total"].Value <= 0 {
		t.Error("js_steps_total not populated")
	}
	if byName["compiler_compiles_total"].Value <= 0 {
		t.Error("compiler_compiles_total not populated")
	}
	if m := byName["harness_cell_wall_seconds"]; m.Count != 2 {
		t.Errorf("harness_cell_wall_seconds count = %d, want 2", m.Count)
	}
	if byName["harness_queue_depth"].Value != 0 {
		t.Errorf("queue depth after run = %v, want 0", byName["harness_queue_depth"].Value)
	}
}

// TestTelemetryFailureDump checks that a failing cell freezes a flight
// dump with the failure's context.
func TestTelemetryFailureDump(t *testing.T) {
	b, err := benchsuite.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub(256)
	cells := []Cell{
		// A step limit far below the benchmark's work makes the cell fail
		// deterministically.
		{Bench: b, Size: benchsuite.XS, Level: ir.O2, Lang: "wasm", Profile: browser.Chrome(browser.Desktop)},
	}
	results, _ := RunCellsWith(cells, RunOptions{Workers: 1, Telemetry: hub, StepLimit: 10})
	if results[0].Err == nil {
		t.Fatal("step-limited cell unexpectedly succeeded")
	}
	dump, n := hub.LastDump()
	if n != 1 || dump == nil {
		t.Fatalf("dumps = %d, want exactly 1", n)
	}
	if dump.Reason == "" {
		t.Fatal("dump has no reason")
	}
}
