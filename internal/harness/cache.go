package harness

import (
	"sync"

	"wasmbench/internal/compiler"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/telemetry"
)

// CacheStats are an ArtifactCache's lookup counters. Hits resolve
// instantly from a completed compile, Misses trigger a compile, and
// DedupWaits are lookups that arrived while another goroutine was already
// compiling the same key and blocked for its result (the singleflight
// path — still only one compile per key).
type CacheStats struct {
	Hits, Misses, DedupWaits int
}

// Lookups returns the total number of cache queries.
func (s CacheStats) Lookups() int { return s.Hits + s.Misses + s.DedupWaits }

// ArtifactCache is a content-addressed compile cache with singleflight
// deduplication. Keys are compiler.Fingerprint values — (source hash, size
// defines, opt level, toolchain, target) — so any two cells that would
// produce the same artifact share one compilation no matter how many
// browser profiles measure it, across goroutines and across runs when the
// caller reuses the cache.
//
// Compilation is deterministic, so caching never changes a CellResult:
// virtual cycles, stats, and trace bytes are identical with the cache on
// or off (errors are cached and replayed identically too). Safe for
// concurrent use; artifacts are immutable after compilation and may be
// shared by concurrent measurements.
type ArtifactCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	stats   CacheStats
	// inst mirrors the stats counters onto live telemetry instruments and
	// compInst threads pass-level compiler instruments into cache-miss
	// compiles (nil = none; see SetInstruments).
	inst     *telemetry.CacheInstruments
	compInst *telemetry.CompilerInstruments
}

type cacheEntry struct {
	ready chan struct{} // closed when art/err are final
	art   *compiler.Artifact
	err   error
}

// NewArtifactCache returns an empty cache.
func NewArtifactCache() *ArtifactCache {
	return &ArtifactCache{entries: make(map[string]*cacheEntry)}
}

// CompileCell returns the artifact for c, compiling at most once per
// fingerprint. hit reports whether this call avoided a compile (a cache
// hit or a dedup wait on another goroutine's in-flight compile).
func (ac *ArtifactCache) CompileCell(c Cell) (art *compiler.Artifact, hit bool, err error) {
	return ac.compileCell(c, nil)
}

// compileCell is CompileCell with an optional fault plan threaded into the
// toolchain. The plan never enters the cache key (Fingerprint hashes only
// the compilation inputs), and injected failures are never cached: the
// entry is removed before waiters are released, so a retry recompiles
// instead of replaying a transient fault forever.
func (ac *ArtifactCache) compileCell(c Cell, faults *faultinject.Plan) (art *compiler.Artifact, hit bool, err error) {
	key := c.Fingerprint()
	ac.mu.Lock()
	if e, ok := ac.entries[key]; ok {
		select {
		case <-e.ready:
			ac.stats.Hits++
			if ac.inst != nil {
				ac.inst.Hits.Inc()
			}
			ac.mu.Unlock()
		default:
			ac.stats.DedupWaits++
			if ac.inst != nil {
				ac.inst.DedupWaits.Inc()
			}
			ac.mu.Unlock()
			<-e.ready
		}
		return e.art, true, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	ac.entries[key] = e
	ac.stats.Misses++
	if ac.inst != nil {
		ac.inst.Misses.Inc()
	}
	compInst := ac.compInst
	ac.mu.Unlock()

	opts := cellOptions(c)
	opts.Faults = faults
	opts.Instruments = compInst
	e.art, e.err = compiler.Compile(c.Bench.Source, opts)
	if e.err != nil && faultinject.IsInjected(e.err) {
		ac.mu.Lock()
		delete(ac.entries, key)
		ac.mu.Unlock()
	}
	close(e.ready)
	return e.art, false, e.err
}

// SetInstruments mirrors future lookup counters onto live telemetry
// instruments and threads compiler pass instruments into cache-miss
// compiles (nil detaches either). The internal stats are unaffected, and
// neither bundle enters the cache key.
func (ac *ArtifactCache) SetInstruments(inst *telemetry.CacheInstruments, compInst *telemetry.CompilerInstruments) {
	ac.mu.Lock()
	ac.inst = inst
	ac.compInst = compInst
	ac.mu.Unlock()
}

// Stats returns a snapshot of the lookup counters.
func (ac *ArtifactCache) Stats() CacheStats {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return ac.stats
}

// Len returns the number of distinct artifacts (including cached failures).
func (ac *ArtifactCache) Len() int {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return len(ac.entries)
}
