package harness

import (
	"strings"
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/ir"
	"wasmbench/internal/telemetry"
)

// poolSmokeCells is the pooled-harness matrix: one benchmark on every
// profile (six cost-table shapes sharing one artifact pool) plus a second
// benchmark (a second pool in the set).
func poolSmokeCells(t testing.TB) []Cell {
	var cells []Cell
	for _, name := range []string{"gemm", "atax"} {
		b, err := benchsuite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range browser.AllProfiles() {
			cells = append(cells, Cell{
				Bench: b, Size: benchsuite.XS, Level: ir.O2, Lang: "wasm", Profile: p,
			})
		}
	}
	return cells
}

// TestPoolSmoke is the CI pool drill (`make pool-smoke`): a pooled
// multi-profile sweep must produce byte-identical virtual metrics to the
// cold sweep — cycles, steps, memory, checksum, exit, output — while the
// pool actually serves checkouts (every wasm cell pooled, recycles once
// workers revisit an artifact).
func TestPoolSmoke(t *testing.T) {
	cells := poolSmokeCells(t)
	cold, _ := RunCellsWith(cells, RunOptions{Workers: 2})
	if err := FirstError(cold); err != nil {
		t.Fatal(err)
	}
	pooled, m := RunCellsWith(cells, RunOptions{Workers: 2, VMPool: true})
	if err := FirstError(pooled); err != nil {
		t.Fatal(err)
	}

	for i := range cells {
		c, p := cold[i].Meas.Result, pooled[i].Meas.Result
		label := cells[i].Label()
		if c.Cycles != p.Cycles {
			t.Errorf("%s: cycles %v (cold) != %v (pooled)", label, c.Cycles, p.Cycles)
		}
		if c.Steps != p.Steps {
			t.Errorf("%s: steps %d != %d", label, c.Steps, p.Steps)
		}
		if c.MemChecksum != p.MemChecksum {
			t.Errorf("%s: mem checksum %#x != %#x", label, c.MemChecksum, p.MemChecksum)
		}
		if c.MemoryBytes != p.MemoryBytes {
			t.Errorf("%s: memory %d != %d", label, c.MemoryBytes, p.MemoryBytes)
		}
		if c.Exit != p.Exit {
			t.Errorf("%s: exit %d != %d", label, c.Exit, p.Exit)
		}
		if c.WasmStats != p.WasmStats {
			t.Errorf("%s: stats diverge:\ncold:   %+v\npooled: %+v", label, c.WasmStats, p.WasmStats)
		}
		if cold[i].Meas.ExecMS != pooled[i].Meas.ExecMS {
			t.Errorf("%s: ExecMS %v != %v", label, cold[i].Meas.ExecMS, pooled[i].Meas.ExecMS)
		}
		if !p.VMPooled {
			t.Errorf("%s: pooled run not served by the pool", label)
		}
	}

	if !m.VMPoolEnabled {
		t.Error("VMPoolEnabled not set on pooled run metrics")
	}
	if m.VMPoolHits+m.VMPoolMisses != len(cells) {
		t.Errorf("pool checkouts %d+%d != %d cells", m.VMPoolHits, m.VMPoolMisses, len(cells))
	}
	if m.VMPoolRecycles == 0 {
		t.Error("no instance was ever recycled across 6 profiles per artifact")
	}

	// The cold run's metrics must not mention the pool at all.
	cold2, mc := RunCellsWith(cells[:1], RunOptions{Workers: 1})
	if err := FirstError(cold2); err != nil {
		t.Fatal(err)
	}
	if mc.VMPoolEnabled || mc.VMPoolHits != 0 || mc.VMPoolRecycles != 0 {
		t.Errorf("pool counters leaked into a pool-less run: %+v", mc)
	}
	if cold2[0].Meas.Result.VMPooled {
		t.Error("pool-less run reported VMPooled")
	}
}

// TestPoolSharedAcrossRuns: a pre-seeded pool set carries warm instances
// between RunCellsWith invocations (the steady-state service scenario), and
// the second run's counters are deltas, not lifetime totals.
func TestPoolSharedAcrossRuns(t *testing.T) {
	cells := poolSmokeCells(t)
	// Room for every profile shape per artifact, so the second run is pure
	// steady state: no evictions, every checkout a recycled instance.
	opt := RunOptions{Workers: 2, VMPool: true, vmPools: newVMPoolSet(len(browser.AllProfiles())+1, nil)}
	res1, m1 := RunCellsWith(cells, opt)
	if err := FirstError(res1); err != nil {
		t.Fatal(err)
	}
	res2, m2 := RunCellsWith(cells, opt)
	if err := FirstError(res2); err != nil {
		t.Fatal(err)
	}
	if m1.VMPoolMisses != len(cells) || m1.VMPoolHits != 0 {
		t.Errorf("cold first run: hits %d misses %d, want 0/%d", m1.VMPoolHits, m1.VMPoolMisses, len(cells))
	}
	if m2.VMPoolHits != len(cells) || m2.VMPoolMisses != 0 {
		t.Errorf("warm second run: hits %d misses %d, want %d/0 (delta accounting or reuse broken)",
			m2.VMPoolHits, m2.VMPoolMisses, len(cells))
	}
	for i := range cells {
		if res1[i].Meas.Result.Cycles != res2[i].Meas.Result.Cycles {
			t.Errorf("%s: cycles differ across shared-pool runs", cells[i].Label())
		}
	}
}

// TestPoolTelemetry: a pooled run with a hub publishes the wasm_vm_pool_*
// counters and the /debug/cells vm_pool block.
func TestPoolTelemetry(t *testing.T) {
	hub := telemetry.NewHub(256)
	cells := poolSmokeCells(t)[:6]
	res, _ := RunCellsWith(cells, RunOptions{Workers: 2, VMPool: true, Telemetry: hub})
	if err := FirstError(res); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hub.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	dump := sb.String()
	for _, want := range []string{"wasm_vm_pool_hits_total", "wasm_vm_pool_misses_total", "wasm_vm_pool_recycles_total"} {
		if !strings.Contains(dump, want) {
			t.Errorf("registry missing %s:\n%s", want, dump)
		}
	}
}
