package harness

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/ir"
	"wasmbench/internal/obsv"
)

// TestFaultSmoke is the CI fault drill (`make faults-smoke`): one
// fixed-seed sweep whose plan hits every injection point at least once,
// with the retry/degrade/quarantine machinery absorbing all of it except
// one deliberately unrecoverable benchmark. The run is deterministic: the
// same seed replays the identical fault counts, outcomes, and robustness
// accounting.
func TestFaultSmoke(t *testing.T) {
	mkCells := func() []Cell {
		chrome := browser.Chrome(browser.Desktop)
		cell := func(name string, sz benchsuite.Size, lang string) Cell {
			b, err := benchsuite.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			return Cell{Bench: b, Size: sz, Level: ir.O2, Lang: lang, Profile: chrome}
		}
		return []Cell{
			cell("atax", benchsuite.XS, "wasm"),    // wasm.stall
			cell("atax", benchsuite.S, "js"),       // js.jit-compile (hot at S)
			cell("bicg", benchsuite.XS, "js"),      // js.heap-oom → retry
			cell("gemm", benchsuite.S, "wasm"),     // wasm.grow-deny (gemm/S grows)
			cell("3mm", benchsuite.S, "wasm"),      // wasm.reg-translate → stack fallback
			cell("2mm", benchsuite.S, "wasm"),      // wasm.aot-translate → register fallback
			cell("mvt", benchsuite.XS, "wasm"),     // compiler.pass → retry+degrade
			cell("trmm", benchsuite.XS, "wasm"),    // compiler.cache → retry
			cell("gesummv", benchsuite.XS, "wasm"), // harness.worker-panic → retry
			cell("syrk", benchsuite.XS, "wasm"),    // wasm.snapshot-restore → silent cold fallback
			cell("doitgen", benchsuite.XS, "wasm"), // unrecoverable → fails
			cell("doitgen", benchsuite.S, "wasm"),  // → quarantined
		}
	}
	rules := []faultinject.Rule{
		{Point: faultinject.WasmStall, Count: 1, Stall: 5 * time.Millisecond, Match: "atax"},
		{Point: faultinject.JSJITCompile, Count: 1, Match: "atax"},
		{Point: faultinject.JSHeapOOM, Count: 1, Match: "bicg"},
		{Point: faultinject.WasmGrowDeny, Count: 1, Match: "gemm"},
		{Point: faultinject.WasmRegTranslate, Count: 1, Match: "3mm"},
		// First rung of the bail ladder: the denied AOT compile falls back to
		// the register body, so the cell still succeeds and its metrics are
		// untouched — only the fault counter records the firing.
		{Point: faultinject.WasmAOTTranslate, Count: 1, Match: "2mm"},
		{Point: faultinject.CompilerPass, Count: 1, Match: "mvt"},
		{Point: faultinject.CompilerCache, Count: 1, Match: "trmm"},
		{Point: faultinject.HarnessPanic, Count: 1, Match: "gesummv"},
		// Pool-checkout denial is absorbed below the retry machinery: the
		// measurement silently instantiates cold, so the cell succeeds on its
		// first attempt with byte-identical metrics.
		{Point: faultinject.WasmSnapshotRestore, Count: 1, Match: "syrk"},
		{Point: faultinject.CompilerPass, Prob: 1, Match: "doitgen"}, // every attempt fails
	}

	type outcome struct {
		counts  map[faultinject.Point]int
		failed  []string
		metrics *obsv.RunMetrics
	}
	sweep := func() outcome {
		plan := faultinject.NewPlan(2026, rules...)
		cells := mkCells()
		res, m := RunCellsWith(cells, RunOptions{
			Workers: 1, Retries: 2, DegradeOnRetry: true,
			QuarantineAfter: 1, Deadline: time.Minute, Faults: plan,
			VMPool: true, // arms the wasm.snapshot-restore injection site
		})
		var failed []string
		for i, r := range res {
			if r.Err != nil {
				failed = append(failed, cells[i].Label()+": "+r.Err.Error())
			}
		}
		return outcome{counts: plan.Counts(), failed: failed, metrics: m}
	}

	o := sweep()

	// Every injection point must have fired at least once. serve.* points
	// live in benchserve's admission path, which a harness sweep never
	// crosses; TestServeFaultDrill (internal/serve) drills those.
	for _, pt := range faultinject.AllPoints {
		if strings.HasPrefix(string(pt), "serve.") {
			continue
		}
		if o.counts[pt] < 1 {
			t.Errorf("injection point %s never fired (counts: %v)", pt, o.counts)
		}
	}

	// Only the unrecoverable benchmark fails: once organically (retries
	// exhausted), once by quarantine.
	if len(o.failed) != 2 {
		t.Fatalf("failed cells = %v, want exactly the doitgen pair", o.failed)
	}
	for _, f := range o.failed {
		if !strings.Contains(f, "doitgen") {
			t.Errorf("unexpected casualty: %s", f)
		}
	}
	if !strings.Contains(o.failed[1], ErrQuarantined.Error()) {
		t.Errorf("second doitgen cell should be quarantined: %s", o.failed[1])
	}

	// Robustness accounting: the metrics aggregate must agree with the
	// per-cell records and the plan's own firing log.
	m := o.metrics
	var retries, degraded, quarantined int
	for _, cm := range m.Cells {
		if cm.Attempts > 1 {
			retries += cm.Attempts - 1
		}
		if cm.Degraded != "" {
			degraded++
		}
		if cm.Quarantined {
			quarantined++
		}
	}
	if m.Retries != retries || m.Degraded != degraded || m.Quarantined != quarantined {
		t.Errorf("aggregate counters disagree with cells: %+v vs (%d,%d,%d)",
			m, retries, degraded, quarantined)
	}
	if m.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", m.Quarantined)
	}
	// Retried-and-recovered cells: bicg (OOM), mvt (pass), trmm (cache),
	// gesummv (panic) each took at least one retry; the recovered ones that
	// went through DegradeOnRetry are recorded as degraded.
	if m.Retries < 4 {
		t.Errorf("Retries = %d, want >= 4", m.Retries)
	}
	if m.Degraded < 3 {
		t.Errorf("Degraded = %d, want >= 3", m.Degraded)
	}
	total := 0
	for _, n := range o.counts {
		total += n
	}
	if m.FaultsInjected != total {
		t.Errorf("FaultsInjected = %d, plan log says %d", m.FaultsInjected, total)
	}

	// Determinism: a second sweep from the same seed replays identically.
	o2 := sweep()
	if !reflect.DeepEqual(o.counts, o2.counts) {
		t.Errorf("fault counts diverge across identical seeds:\n%v\n%v", o.counts, o2.counts)
	}
	if !reflect.DeepEqual(o.failed, o2.failed) {
		t.Errorf("failure sets diverge:\n%v\n%v", o.failed, o2.failed)
	}
	if o.metrics.Retries != o2.metrics.Retries || o.metrics.Degraded != o2.metrics.Degraded ||
		o.metrics.Quarantined != o2.metrics.Quarantined ||
		o.metrics.FaultsInjected != o2.metrics.FaultsInjected {
		t.Errorf("robustness counters diverge: %+v vs %+v", o.metrics, o2.metrics)
	}
}
