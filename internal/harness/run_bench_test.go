package harness

import (
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/ir"
)

// BenchmarkRunCellsMultiProfile measures the compile-once/measure-many
// grid the artifact cache targets: one benchmark at one size, measured on
// every browser profile. With the cache the toolchain runs once per
// iteration; without it every profile recompiles the identical artifact.
func BenchmarkRunCellsMultiProfile(b *testing.B) {
	bench, err := benchsuite.ByName("gemm")
	if err != nil {
		b.Fatal(err)
	}
	var cells []Cell
	for _, p := range browser.AllProfiles() {
		cells = append(cells, Cell{
			Bench: bench, Size: benchsuite.XS, Level: ir.O2, Lang: "wasm", Profile: p,
		})
	}
	run := func(b *testing.B, opt RunOptions) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, _ := RunCellsWith(cells, opt)
			if err := FirstError(res); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cached", func(b *testing.B) {
		run(b, RunOptions{Workers: 2})
	})
	b.Run("uncached", func(b *testing.B) {
		run(b, RunOptions{Workers: 2, DisableCache: true})
	})
}
