package harness

import (
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/ir"
)

// BenchmarkRunCellsMultiProfile measures the compile-once/measure-many
// grid the artifact cache targets: one benchmark at one size, measured on
// every browser profile. With the cache the toolchain runs once per
// iteration; without it every profile recompiles the identical artifact.
func BenchmarkRunCellsMultiProfile(b *testing.B) {
	bench, err := benchsuite.ByName("gemm")
	if err != nil {
		b.Fatal(err)
	}
	var cells []Cell
	for _, p := range browser.AllProfiles() {
		cells = append(cells, Cell{
			Bench: bench, Size: benchsuite.XS, Level: ir.O2, Lang: "wasm", Profile: p,
		})
	}
	run := func(b *testing.B, opt RunOptions) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, _ := RunCellsWith(cells, opt)
			if err := FirstError(res); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cached", func(b *testing.B) {
		run(b, RunOptions{Workers: 2})
	})
	b.Run("uncached", func(b *testing.B) {
		run(b, RunOptions{Workers: 2, DisableCache: true})
	})
	// Pool set created fresh each iteration: every profile still clones from
	// the per-artifact snapshot instead of re-running module init.
	b.Run("pooled", func(b *testing.B) {
		run(b, RunOptions{Workers: 2, VMPool: true})
	})
	// Steady-state service shape: one artifact cache and one pool set
	// survive across iterations, so after the first sweep every checkout is
	// a snapshot-reset recycle and nothing recompiles or re-instantiates.
	b.Run("pooled-shared", func(b *testing.B) {
		pools := newVMPoolSet(len(cells)+1, nil)
		cache := NewArtifactCache()
		for i := 0; i < b.N; i++ {
			res, _ := RunCellsWith(cells, RunOptions{Workers: 2, VMPool: true, vmPools: pools, Cache: cache})
			if err := FirstError(res); err != nil {
				b.Fatal(err)
			}
		}
	})
}
