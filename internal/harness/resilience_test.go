package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/ir"
	"wasmbench/internal/obsv"
)

func resCell(t *testing.T, name string, size benchsuite.Size, lang string) Cell {
	t.Helper()
	b, err := benchsuite.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return Cell{Bench: b, Size: size, Level: ir.O2, Lang: lang, Profile: browser.Chrome(browser.Desktop)}
}

// measKey extracts the deterministic measurement fields the result tables
// are built from (Art and Output are not compared: resumed cells carry
// neither).
type measKey struct {
	ExecMS, MemoryKB float64
	Cycles           float64
	Steps            uint64
	MemoryBytes      uint64
	MemChecksum      uint64
}

func keyOf(t *testing.T, r CellResult) measKey {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("%s: %v", r.Label(), r.Err)
	}
	return measKey{
		ExecMS: r.Meas.ExecMS, MemoryKB: r.Meas.MemoryKB,
		Cycles: r.Meas.Result.Cycles, Steps: r.Meas.Result.Steps,
		MemoryBytes: r.Meas.Result.MemoryBytes, MemChecksum: r.Meas.Result.MemChecksum,
	}
}

// TestZeroFaultByteIdentical proves the inertness guarantee: running with
// no fault plan and running with an armed-but-empty plan produce
// byte-identical traces and identical results, and a run through the full
// resilience machinery (deadline, retries, quarantine enabled, zero
// faults) produces the same measurement as the plain path with no
// robustness lines in the metrics rendering.
func TestZeroFaultByteIdentical(t *testing.T) {
	c := resCell(t, "atax", benchsuite.XS, "wasm")
	art, err := CompileCell(c)
	if err != nil {
		t.Fatal(err)
	}
	runTrace := func(plan *faultinject.Plan) ([]byte, *compiler.Result) {
		tr := &obsv.Collector{}
		cfg := c.Profile.Wasm
		cfg.Tracer = tr
		cfg.Faults = plan
		res, err := compiler.RunWasm(art, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obsv.WriteChromeTrace(&buf, tr.Events(), nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	offTrace, offRes := runTrace(nil)
	emptyTrace, emptyRes := runTrace(faultinject.NewPlan(99)) // armed, no rules
	if !bytes.Equal(offTrace, emptyTrace) {
		t.Error("empty fault plan perturbed the trace bytes")
	}
	if !reflect.DeepEqual(offRes, emptyRes) {
		t.Error("empty fault plan perturbed the result")
	}

	cells := []Cell{c, resCell(t, "atax", benchsuite.XS, "js")}
	plain, _ := RunCellsWith(cells, RunOptions{Workers: 1})
	hard, m := RunCellsWith(cells, RunOptions{
		Workers: 1, Retries: 2, DegradeOnRetry: true,
		QuarantineAfter: 3, Deadline: time.Minute,
	})
	for i := range cells {
		if keyOf(t, plain[i]) != keyOf(t, hard[i]) {
			t.Errorf("%s: resilience machinery changed the measurement", cells[i].Label())
		}
	}
	if m.FaultsInjected != 0 || m.Retries != 0 || m.Degraded != 0 || m.Quarantined != 0 {
		t.Errorf("zero-fault run has robustness counters: %+v", m)
	}
	if strings.Contains(m.Render(), "robustness:") {
		t.Error("zero-fault Render emits a robustness line")
	}
	for _, cm := range m.Cells {
		if cm.Attempts != 1 || cm.Degraded != "" || cm.Quarantined || cm.Resumed {
			t.Errorf("cell %s metric polluted: %+v", cm.Label, cm)
		}
	}
}

// TestRetryRecoversTransientFault: an injected transient compiler failure
// fails the first attempt; the retry recompiles (the cache must not replay
// the injected error) and produces the exact clean-run measurement.
func TestRetryRecoversTransientFault(t *testing.T) {
	c := resCell(t, "atax", benchsuite.XS, "wasm")
	want := keyOf(t, RunCell(c))

	plan := faultinject.NewPlan(7, faultinject.Rule{Point: faultinject.CompilerPass, Count: 1})
	res, m := RunCellsWith([]Cell{c}, RunOptions{Workers: 1, Retries: 2, Faults: plan})
	if got := keyOf(t, res[0]); got != want {
		t.Errorf("recovered measurement differs: %+v vs %+v", got, want)
	}
	if m.Cells[0].Attempts != 2 {
		t.Errorf("attempts = %d, want 2", m.Cells[0].Attempts)
	}
	if m.Retries != 1 || m.FaultsInjected < 1 {
		t.Errorf("counters: retries=%d faults=%d", m.Retries, m.FaultsInjected)
	}
	if plan.Counts()[faultinject.CompilerPass] != 1 {
		t.Errorf("fired %v", plan.Counts())
	}
}

// TestDegradeLadder: two consecutive injected failures walk a wasm cell
// down to the noreg+nofuse rung, which by construction still yields the
// full-configuration measurement.
func TestDegradeLadder(t *testing.T) {
	c := resCell(t, "atax", benchsuite.XS, "wasm")
	want := keyOf(t, RunCell(c))

	plan := faultinject.NewPlan(13, faultinject.Rule{Point: faultinject.CompilerPass, Count: 2})
	res, m := RunCellsWith([]Cell{c}, RunOptions{
		Workers: 1, Retries: 3, DegradeOnRetry: true, Faults: plan,
	})
	if got := keyOf(t, res[0]); got != want {
		t.Errorf("degraded measurement differs: %+v vs %+v", got, want)
	}
	if m.Cells[0].Attempts != 3 || m.Cells[0].Degraded != "noreg+nofuse" {
		t.Errorf("cell metric: %+v", m.Cells[0])
	}
	if m.Degraded != 1 || m.Retries != 2 {
		t.Errorf("counters: %+v", m)
	}
}

// TestQuarantine: a benchmark whose cells always fail trips the
// consecutive-failure threshold; subsequent cells of that benchmark are
// skipped with ErrQuarantined while other benchmarks still run.
func TestQuarantine(t *testing.T) {
	bad1 := resCell(t, "atax", benchsuite.XS, "wasm")
	bad2 := resCell(t, "atax", benchsuite.S, "wasm")
	good := resCell(t, "bicg", benchsuite.XS, "wasm")

	plan := faultinject.NewPlan(3, faultinject.Rule{
		Point: faultinject.CompilerPass, Prob: 1, Match: "atax",
	})
	res, m := RunCellsWith([]Cell{bad1, bad2, good}, RunOptions{
		Workers: 1, Retries: 1, QuarantineAfter: 1, Faults: plan,
	})
	if res[0].Err == nil || errors.Is(res[0].Err, ErrQuarantined) {
		t.Errorf("first cell should fail organically: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, ErrQuarantined) {
		t.Errorf("second cell should be quarantined: %v", res[1].Err)
	}
	if res[2].Err != nil {
		t.Errorf("unrelated benchmark affected: %v", res[2].Err)
	}
	if !m.Cells[1].Quarantined || m.Cells[1].Attempts != 0 {
		t.Errorf("quarantined cell metric: %+v", m.Cells[1])
	}
	if m.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", m.Quarantined)
	}
	if !strings.Contains(m.Render(), "QUARANTINED") {
		t.Error("Render missing QUARANTINED status")
	}
}

// TestWorkerPanicRecovered: an injected worker panic is converted to a
// CellResult error rather than crashing the pool, and a retry succeeds.
func TestWorkerPanicRecovered(t *testing.T) {
	c := resCell(t, "atax", benchsuite.XS, "wasm")

	plan := faultinject.NewPlan(11, faultinject.Rule{Point: faultinject.HarnessPanic, Count: 1})
	res, _ := RunCellsWith([]Cell{c}, RunOptions{Workers: 1, Faults: plan})
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "worker panic") {
		t.Fatalf("want worker panic error, got %v", res[0].Err)
	}
	if !faultinject.IsInjected(res[0].Err) {
		t.Error("injected panic should unwrap to InjectedError")
	}

	plan2 := faultinject.NewPlan(11, faultinject.Rule{Point: faultinject.HarnessPanic, Count: 1})
	res2, m2 := RunCellsWith([]Cell{c}, RunOptions{Workers: 1, Retries: 1, Faults: plan2})
	if res2[0].Err != nil {
		t.Fatalf("retry after panic failed: %v", res2[0].Err)
	}
	if m2.Cells[0].Attempts != 2 {
		t.Errorf("attempts = %d, want 2", m2.Cells[0].Attempts)
	}
}

// TestDeadlineCancelsStalledCell: a cell wedged in an injected stall is
// abandoned at the wall-clock deadline without leaking its worker
// goroutine — the cancel channel aborts the stall and the buffered result
// channel lets the goroutine exit.
func TestDeadlineCancelsStalledCell(t *testing.T) {
	c := resCell(t, "atax", benchsuite.XS, "wasm")
	base := runtime.NumGoroutine()

	plan := faultinject.NewPlan(5, faultinject.Rule{
		Point: faultinject.WasmStall, Count: 1, Stall: time.Hour,
	})
	start := time.Now()
	res, m := RunCellsWith([]Cell{c}, RunOptions{
		Workers: 1, Deadline: 100 * time.Millisecond, Faults: plan,
	})
	if !errors.Is(res[0].Err, ErrCellDeadline) {
		t.Fatalf("want ErrCellDeadline, got %v", res[0].Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline did not bound the run: %v", elapsed)
	}
	if !m.Cells[0].Failed {
		t.Error("deadline cell not marked failed")
	}
	// The abandoned goroutine must exit once its stall is cancelled.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutine leak: %d running, baseline %d", n, base)
	}
}

// TestContextCancelAbandonsRun: canceling RunOptions.Context mid-run
// abandons the stalled in-flight cell promptly with ErrCellCanceled (not
// ErrCellDeadline — no timeout fired), fails pending cells fast, and
// leaks no goroutines once the injected stall is aborted.
func TestContextCancelAbandonsRun(t *testing.T) {
	cells := []Cell{
		resCell(t, "atax", benchsuite.XS, "wasm"),
		resCell(t, "bicg", benchsuite.XS, "wasm"),
	}
	base := runtime.NumGoroutine()

	plan := faultinject.NewPlan(5, faultinject.Rule{
		Point: faultinject.WasmStall, Count: len(cells), Stall: time.Hour,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, _ := RunCellsWith(cells, RunOptions{
		Workers: 1, Context: ctx, Faults: plan,
		Retries: 3, // must not retry a canceled cell
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancel did not bound the run: %v", elapsed)
	}
	for i, r := range res {
		if !errors.Is(r.Err, ErrCellCanceled) {
			t.Errorf("cell %d: want ErrCellCanceled, got %v", i, r.Err)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("cell %d: error chain should match context.Canceled: %v", i, r.Err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutine leak: %d running, baseline %d", n, base)
	}
}

// TestSameSeedSameSequences: two fresh plans with the same seed drive a
// retrying sweep to identical fault records, identical outcomes, and
// identical robustness counters.
func TestSameSeedSameSequences(t *testing.T) {
	cells := []Cell{
		resCell(t, "atax", benchsuite.XS, "wasm"),
		resCell(t, "atax", benchsuite.XS, "js"),
		resCell(t, "bicg", benchsuite.XS, "wasm"),
	}
	rules := []faultinject.Rule{
		{Point: faultinject.CompilerPass, Prob: 0.5},
		{Point: faultinject.HarnessPanic, Prob: 0.3},
	}
	run := func() ([]faultinject.Record, []string, *obsv.RunMetrics) {
		plan := faultinject.NewPlan(42, rules...)
		res, m := RunCellsWith(cells, RunOptions{
			Workers: 1, Retries: 2, DegradeOnRetry: true, Faults: plan,
		})
		outcomes := make([]string, len(res))
		for i, r := range res {
			if r.Err != nil {
				outcomes[i] = "err:" + r.Err.Error()
			} else {
				outcomes[i] = fmt.Sprintf("%s/%s/%+v", r.Label(), m.Cells[i].Degraded, keyOf(t, r))
			}
		}
		return plan.Records(), outcomes, m
	}
	rec1, out1, m1 := run()
	rec2, out2, m2 := run()
	if !reflect.DeepEqual(rec1, rec2) {
		t.Errorf("fault records diverge:\n%v\n%v", rec1, rec2)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("outcomes diverge:\n%v\n%v", out1, out2)
	}
	if m1.Retries != m2.Retries || m1.Degraded != m2.Degraded ||
		m1.FaultsInjected != m2.FaultsInjected || m1.Quarantined != m2.Quarantined {
		t.Errorf("counters diverge: %+v vs %+v", m1, m2)
	}
}

// TestCheckpointResume: a faulty run records only its successes; a resumed
// run restores them without re-execution and completes the rest, matching
// the clean-run table. Stale fingerprints and corrupt tail lines are
// ignored.
func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.jsonl")
	cells := []Cell{
		resCell(t, "atax", benchsuite.XS, "wasm"),
		resCell(t, "atax", benchsuite.XS, "js"),
	}
	clean := RunCells(cells)
	want := []measKey{keyOf(t, clean[0]), keyOf(t, clean[1])}

	// Run 1: the JS cell fails persistently; only the wasm cell checkpoints.
	cp1, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(1, faultinject.Rule{
		Point: faultinject.CompilerPass, Prob: 1, Match: "/js/",
	})
	res1, _ := RunCellsWith(cells, RunOptions{Workers: 1, Faults: plan, Checkpoint: cp1})
	if res1[0].Err != nil {
		t.Fatalf("wasm cell failed: %v", res1[0].Err)
	}
	if res1[1].Err == nil {
		t.Fatal("js cell should have failed")
	}
	if cp1.Len() != 1 {
		t.Fatalf("checkpoint recorded %d cells, want 1", cp1.Len())
	}
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write from a crash: garbage plus a truncated record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json\n{\"label\":\"trunc")
	f.Close()

	// Run 2: resume — the wasm cell restores, the js cell re-runs clean.
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Len() != 1 {
		t.Fatalf("reloaded %d cells, want 1 (corrupt tail must be skipped)", cp2.Len())
	}
	res2, m2 := RunCellsWith(cells, RunOptions{Workers: 1, Checkpoint: cp2})
	for i := range cells {
		if got := keyOf(t, res2[i]); got != want[i] {
			t.Errorf("%s: resumed table differs: %+v vs %+v", cells[i].Label(), got, want[i])
		}
	}
	if !m2.Cells[0].Resumed || m2.Cells[0].Attempts != 0 {
		t.Errorf("wasm cell should be resumed: %+v", m2.Cells[0])
	}
	if m2.Cells[1].Resumed {
		t.Error("js cell should have re-run, not resumed")
	}
	if !strings.Contains(m2.Render(), "resumed") {
		t.Error("Render missing resumed marker")
	}

	// A changed configuration invalidates the record via the fingerprint.
	stale := cells[0]
	stale.Level = ir.O0
	if _, ok := cp2.Lookup(stale); ok {
		t.Error("stale fingerprint must not resume")
	}
}

// TestBackoffDeterministicAndBounded: the retry schedule is a pure
// function of (seed, label, attempt) and grows exponentially with jitter
// in [0, 100%) of the base delay.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	base := 10 * time.Millisecond
	for attempt := 1; attempt <= 4; attempt++ {
		d1 := backoffDelay(base, 42, "atax/XS/wasm", attempt)
		d2 := backoffDelay(base, 42, "atax/XS/wasm", attempt)
		if d1 != d2 {
			t.Errorf("attempt %d: %v != %v", attempt, d1, d2)
		}
		lo := base << uint(attempt-1)
		if d1 < lo || d1 >= 2*lo {
			t.Errorf("attempt %d: %v outside [%v, %v)", attempt, d1, lo, 2*lo)
		}
	}
	if backoffDelay(0, 42, "x", 1) != 0 {
		t.Error("zero base must not sleep")
	}
}
