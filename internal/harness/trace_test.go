package harness

import (
	"bytes"
	"testing"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/ir"
	"wasmbench/internal/obsv"
)

// traceCell runs one cell on a fresh profile with a fresh collector and
// returns the VM event stream plus the rendered Chrome trace. Everything
// in the stream is stamped with virtual cycles, so two runs of the same
// cell must agree byte for byte.
func traceCell(t *testing.T, bench string, size benchsuite.Size, lang string) ([]obsv.Event, []byte) {
	t.Helper()
	b, err := benchsuite.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	coll := &obsv.Collector{}
	prof := browser.Chrome(browser.Desktop)
	prof.SetTracer(coll)
	r := RunCell(Cell{Bench: b, Size: size, Level: ir.O2, Lang: lang, Profile: prof})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	var buf bytes.Buffer
	if err := obsv.WriteChromeTrace(&buf, coll.Events(), nil); err != nil {
		t.Fatal(err)
	}
	return coll.Events(), buf.Bytes()
}

func TestTraceDeterministic(t *testing.T) {
	ev1, json1 := traceCell(t, "atax", benchsuite.M, "wasm")
	ev2, json2 := traceCell(t, "atax", benchsuite.M, "wasm")
	if len(ev1) == 0 {
		t.Fatal("no events collected")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d differs:\n  %+v\n  %+v", i, ev1[i], ev2[i])
		}
	}
	if !bytes.Equal(json1, json2) {
		t.Fatal("rendered Chrome traces are not byte-identical")
	}
	if n := len(obsv.FilterKinds(ev1, obsv.KindTierUp)); n < 1 {
		t.Fatalf("expected at least one tier-up event, got %d", n)
	}
	if n := len(obsv.FilterKinds(ev1, obsv.KindMemGrow)); n < 1 {
		t.Fatalf("expected at least one memory-grow event, got %d", n)
	}
}

func TestTraceDeterministicJS(t *testing.T) {
	ev1, json1 := traceCell(t, "atax", benchsuite.S, "js")
	_, json2 := traceCell(t, "atax", benchsuite.S, "js")
	if len(ev1) == 0 {
		t.Fatal("no events collected")
	}
	if !bytes.Equal(json1, json2) {
		t.Fatal("rendered Chrome traces are not byte-identical")
	}
	if n := len(obsv.FilterKinds(ev1, obsv.KindTierUp)); n < 1 {
		t.Fatalf("expected at least one JS tier-up event, got %d", n)
	}
}

// TestTraceDeterministicParallel checks that tracing survives the parallel
// harness: each cell gets its own collector, and the per-cell streams must
// match a serial re-run exactly.
func TestTraceDeterministicParallel(t *testing.T) {
	names := []string{"atax", "mvt", "bicg"}
	colls := make([]*obsv.Collector, len(names))
	cells := make([]Cell, len(names))
	for i, name := range names {
		b, err := benchsuite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		colls[i] = &obsv.Collector{}
		prof := browser.Chrome(browser.Desktop)
		prof.SetTracer(colls[i])
		cells[i] = Cell{Bench: b, Size: benchsuite.S, Level: ir.O2, Lang: "wasm", Profile: prof}
	}
	results := RunCellsN(cells, 3)
	if errs := AllErrors(results); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	for i, name := range names {
		serial, _ := traceCell(t, name, benchsuite.S, "wasm")
		par := colls[i].Events()
		if len(par) != len(serial) {
			t.Fatalf("%s: parallel run produced %d events, serial %d", name, len(par), len(serial))
		}
		for j := range par {
			if par[j] != serial[j] {
				t.Fatalf("%s: event %d differs between parallel and serial runs", name, j)
			}
		}
	}
}

// TestRunCellsWithMetrics exercises the instrumented harness end to end:
// worker accounting, compile/measure split, and harness trace events.
func TestRunCellsWithMetrics(t *testing.T) {
	b, err := benchsuite.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for _, lang := range []string{"wasm", "js"} {
		cells = append(cells, Cell{Bench: b, Size: benchsuite.XS, Level: ir.O2,
			Lang: lang, Profile: browser.Chrome(browser.Desktop)})
	}
	coll := &obsv.Collector{}
	var progress int
	results, metrics := RunCellsWith(cells, RunOptions{
		Workers: 2,
		Tracer:  coll,
		OnProgress: func(done, total int, r CellResult) {
			if total != len(cells) {
				t.Errorf("progress total = %d, want %d", total, len(cells))
			}
			progress++
		},
	})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if progress != len(cells) {
		t.Fatalf("progress callbacks = %d, want %d", progress, len(cells))
	}
	if metrics.Workers != 2 || len(metrics.Cells) != len(cells) {
		t.Fatalf("metrics shape wrong: %+v", metrics)
	}
	for i, cm := range metrics.Cells {
		if cm.Wall <= 0 || cm.Compile <= 0 || cm.Measure <= 0 {
			t.Errorf("cell %d: missing timings: %+v", i, cm)
		}
		if cm.Label == "" {
			t.Errorf("cell %d: empty label", i)
		}
	}
	if u := metrics.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization out of range: %v", u)
	}
	starts := obsv.FilterKinds(coll.Events(), obsv.KindCellStart)
	dones := obsv.FilterKinds(coll.Events(), obsv.KindCellDone)
	if len(starts) != len(cells) || len(dones) != len(cells) {
		t.Fatalf("harness events: %d starts, %d dones, want %d each",
			len(starts), len(dones), len(cells))
	}
}

func TestAllErrors(t *testing.T) {
	results := []CellResult{
		{},
		{Err: errFake("a")},
		{},
		{Err: errFake("b")},
	}
	errs := AllErrors(results)
	if len(errs) != 2 || errs[0].Error() != "a" || errs[1].Error() != "b" {
		t.Fatalf("AllErrors = %v", errs)
	}
	if AllErrors(results[:1]) != nil {
		t.Fatal("expected nil for clean results")
	}
}

type errFake string

func (e errFake) Error() string { return string(e) }
