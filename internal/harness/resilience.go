package harness

// This file is the harness's resilience layer: per-cell budgets (virtual
// step limit + wall-clock deadline), panic recovery in workers, bounded
// retry with seeded exponential backoff, a graceful-degradation ladder
// (regtier → fusion → opt level progressively disabled, mirroring real
// engines tiering down), per-benchmark quarantine, and the fault-plan
// plumbing that lets internal/faultinject exercise all of it
// deterministically. The paper's methodology needs sweeps that survive
// hostile conditions — mobile tab OOM kills, wedged cells, transient
// toolchain failures — without losing the rest of the table.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"wasmbench/internal/browser"
	"wasmbench/internal/compiler"
	"wasmbench/internal/faultinject"
	"wasmbench/internal/ir"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
)

// Resilience errors.
var (
	// ErrCellDeadline reports that a cell exceeded its wall-clock budget —
	// RunOptions.Deadline or a deadline carried by RunOptions.Context — and
	// was abandoned (its goroutine exits on its own; see runAttemptGuarded).
	ErrCellDeadline = errors.New("harness: cell deadline exceeded")
	// ErrCellCanceled reports a cell abandoned because RunOptions.Context
	// was canceled (a drain or client disconnect, not a timeout). The
	// wrapped chain also matches context.Canceled.
	ErrCellCanceled = errors.New("harness: cell canceled")
	// ErrQuarantined reports a cell skipped because its benchmark
	// accumulated RunOptions.QuarantineAfter consecutive failures.
	ErrQuarantined = errors.New("harness: benchmark quarantined")
)

// degradeRungs is the graceful-degradation ladder for a cell language, in
// the order attempts descend it. The wasm rungs only change dispatch
// machinery (register tier, fusion), so a degraded result is identical to
// the full-configuration result by construction; the final O0 rung trades
// optimization for survival and is visibly recorded in the metrics.
func degradeRungs(lang string) []string {
	if lang == "js" {
		return []string{"nojit", "O0"}
	}
	return []string{"noreg", "noreg+nofuse", "O0"}
}

// backoffDelay is the seeded exponential backoff before retry attempt
// (1-based): base·2^(attempt−1) plus up to 100% deterministic jitter from
// the fault-plan seed, so a fixed seed replays the identical schedule.
func backoffDelay(base time.Duration, seed uint64, label string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 20 {
		shift = 20
	}
	d := base << uint(shift)
	return d + time.Duration(float64(d)*faultinject.Jitter01(seed, label, attempt))
}

// quarantine tracks consecutive failures per benchmark across the worker
// pool. After `after` consecutive failures, further cells of that
// benchmark are skipped with ErrQuarantined; one success resets the count.
type quarantine struct {
	mu    chan struct{} // 1-buffered semaphore (avoids embedding sync.Mutex in a value copied by tests)
	after int
	fails map[string]int
}

func newQuarantine(after int) *quarantine {
	if after <= 0 {
		return nil
	}
	q := &quarantine{mu: make(chan struct{}, 1), after: after, fails: make(map[string]int)}
	q.mu <- struct{}{}
	return q
}

func (q *quarantine) blocked(bench string) bool {
	if q == nil {
		return false
	}
	<-q.mu
	n := q.fails[bench]
	q.mu <- struct{}{}
	return n >= q.after
}

func (q *quarantine) report(bench string, failed bool) {
	if q == nil {
		return
	}
	<-q.mu
	if failed {
		q.fails[bench]++
	} else {
		q.fails[bench] = 0
	}
	q.mu <- struct{}{}
}

// attemptInfo carries one attempt's wall-time split.
type attemptInfo struct {
	compile time.Duration
	measure time.Duration
	hit     bool
}

// runAttempt executes one attempt of a cell at a degradation rung, with an
// optional per-cell fault plan threaded through the toolchain and both
// engines. With rung == "" and a nil plan this is exactly the pre-
// resilience execution path.
func runAttempt(c Cell, cache *ArtifactCache, opt RunOptions, rung string, plan *faultinject.Plan) (CellResult, attemptInfo) {
	var info attemptInfo
	if plan != nil && plan.Fire(faultinject.CompilerCache, c.Bench.Name) {
		return CellResult{Cell: c, Err: fmt.Errorf("%s/%v: %w", c.Bench.Name, c.Size,
			faultinject.Errorf(faultinject.CompilerCache, "artifact cache unavailable"))}, info
	}

	cc := c
	mo := browser.MeasureOptions{StepLimit: opt.StepLimit, Faults: plan}
	switch rung {
	case "noreg":
		mo.DisableRegTier = true
	case "noreg+nofuse":
		mo.DisableRegTier, mo.DisableFusion = true, true
	case "nojit":
		mo.DisableJIT = true
	case "O0":
		cc.Level = ir.O0
		if cc.Lang == "js" {
			mo.DisableJIT = true
		} else {
			mo.DisableRegTier, mo.DisableFusion = true, true
		}
	}

	t0 := time.Now()
	var art *compiler.Artifact
	var err error
	if cache != nil {
		art, info.hit, err = cache.compileCell(cc, plan)
	} else {
		opts := cellOptions(cc)
		opts.Faults = plan
		if opt.Telemetry != nil {
			// Get-or-create against the registry: cheap, and cold compiles
			// stay visible on /metrics even with the cache disabled.
			opts.Instruments = telemetry.NewCompilerInstruments(opt.Telemetry.Registry())
		}
		art, err = compiler.Compile(cc.Bench.Source, opts)
	}
	info.compile = time.Since(t0)
	if err != nil {
		return CellResult{Cell: c, Err: fmt.Errorf("%s/%v: %w", c.Bench.Name, c.Size, err)}, info
	}

	t1 := time.Now()
	var m *browser.Measurement
	if cc.Lang == "js" {
		m, err = cc.Profile.MeasureJSWith(art, mo)
	} else {
		// Pooled instantiation is keyed by the degraded cell's fingerprint:
		// an O0 rung compiles a different artifact and therefore uses a
		// different pool, while the dispatch-only rungs (noreg, nofuse)
		// share the artifact but land in their own config-shape buckets.
		mo.VMPool = opt.vmPools.poolFor(cc.Fingerprint(), art)
		m, err = cc.Profile.MeasureWasmWith(art, mo)
	}
	info.measure = time.Since(t1)
	if err != nil {
		err = fmt.Errorf("%s/%v/%s: %w", c.Bench.Name, c.Size, c.Lang, err)
	}
	return CellResult{Cell: c, Meas: m, Art: art, Err: err}, info
}

// budgetErr maps a context's termination cause to the harness error for a
// cell abandoned mid-attempt (or while waiting to start one).
func budgetErr(ctx context.Context, label string, deadline time.Duration) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		if deadline > 0 {
			return fmt.Errorf("%s: %w after %v", label, ErrCellDeadline, deadline)
		}
		return fmt.Errorf("%s: %w", label, ErrCellDeadline)
	}
	return fmt.Errorf("%s: %w: %w", label, ErrCellCanceled, ctx.Err())
}

// runAttemptGuarded wraps runAttempt with panic recovery and, when the
// context carries a budget (RunOptions.Deadline, a caller deadline, or
// plain cancelation), a wall-clock guard. The attempt runs in a child
// goroutine that communicates over a 1-buffered channel: on expiry the
// worker abandons it — the child's eventual send never blocks, so the
// goroutine always exits, and ctx.Done() doubles as the fault-plan cancel
// channel, aborting any injected stall the child is sleeping in. With no
// budget at all the attempt runs inline: the zero-fault fast path spawns
// nothing.
func runAttemptGuarded(ctx context.Context, c Cell, opt RunOptions, cache *ArtifactCache, rung, label string) (CellResult, attemptInfo) {
	run := func(cancel <-chan struct{}) (res CellResult, info attemptInfo) {
		defer func() {
			if p := recover(); p != nil {
				if err, ok := p.(error); ok && faultinject.IsInjected(err) {
					res = CellResult{Cell: c, Err: fmt.Errorf("%s: worker panic: %w", label, err)}
				} else {
					res = CellResult{Cell: c, Err: fmt.Errorf("%s: worker panic: %v", label, p)}
				}
			}
		}()
		plan := opt.Faults.Cell(label, cancel)
		if plan.Fire(faultinject.HarnessPanic, "worker") {
			panic(faultinject.Errorf(faultinject.HarnessPanic, "injected worker panic"))
		}
		return runAttempt(c, cache, opt, rung, plan)
	}

	if opt.Deadline > 0 {
		var cancelBudget context.CancelFunc
		ctx, cancelBudget = context.WithTimeout(ctx, opt.Deadline)
		defer cancelBudget()
	}
	if ctx.Done() == nil {
		return run(nil)
	}
	if ctx.Err() != nil {
		return CellResult{Cell: c, Err: budgetErr(ctx, label, opt.Deadline)}, attemptInfo{}
	}

	type attemptResult struct {
		res  CellResult
		info attemptInfo
	}
	ch := make(chan attemptResult, 1)
	go func() {
		res, info := run(ctx.Done())
		ch <- attemptResult{res, info}
	}()
	select {
	case ar := <-ch:
		return ar.res, ar.info
	case <-ctx.Done():
		return CellResult{Cell: c, Err: budgetErr(ctx, label, opt.Deadline)}, attemptInfo{}
	}
}

// cellOutcome summarizes a cell's resilient execution for the run metrics.
type cellOutcome struct {
	compile     time.Duration
	measure     time.Duration
	hit         bool
	attempts    int
	degraded    string
	quarantined bool
}

// runCellResilient drives one cell through quarantine check, the attempt/
// retry loop with seeded backoff, and the degradation ladder, emitting the
// robustness trace events as recoveries happen.
func runCellResilient(ctx context.Context, c Cell, opt RunOptions, cache *ArtifactCache, quar *quarantine, runStart time.Time) (CellResult, cellOutcome) {
	label := c.Label()
	wallTS := func() float64 { return float64(time.Since(runStart)) }

	if ctx.Err() != nil {
		// Canceled before starting: report the termination without touching
		// the quarantine counters — cancelation is not a benchmark failure.
		return CellResult{Cell: c, Err: budgetErr(ctx, label, 0)}, cellOutcome{}
	}

	if quar.blocked(c.Bench.Name) {
		if opt.Tracer != nil {
			opt.Tracer.Emit(obsv.Event{Kind: obsv.KindQuarantine, TS: wallTS(),
				Name: label, Track: "harness", A: float64(opt.QuarantineAfter)})
		}
		return CellResult{Cell: c, Err: fmt.Errorf("%s: %w", label, ErrQuarantined)},
			cellOutcome{quarantined: true}
	}

	seed := opt.Faults.Seed()
	var res CellResult
	var out cellOutcome
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		if attempt > 0 {
			d := backoffDelay(opt.RetryBackoff, seed, label, attempt)
			if opt.Tracer != nil {
				opt.Tracer.Emit(obsv.Event{Kind: obsv.KindRetry, TS: wallTS(),
					Name: label, Track: "harness",
					A: float64(attempt + 1), B: float64(d) / float64(time.Millisecond)})
			}
			if d > 0 {
				timer := time.NewTimer(d)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
				}
			}
			if ctx.Err() != nil {
				res = CellResult{Cell: c, Err: budgetErr(ctx, label, 0)}
				break
			}
		}
		rung := ""
		if opt.DegradeOnRetry && attempt > 0 {
			rungs := degradeRungs(c.Lang)
			ri := attempt - 1
			if ri >= len(rungs) {
				ri = len(rungs) - 1
			}
			rung = rungs[ri]
			if opt.Tracer != nil {
				opt.Tracer.Emit(obsv.Event{Kind: obsv.KindDegrade, TS: wallTS(),
					Name: label, Track: rung, A: float64(attempt + 1)})
			}
		}
		var info attemptInfo
		res, info = runAttemptGuarded(ctx, c, opt, cache, rung, label)
		out.attempts = attempt + 1
		out.compile += info.compile
		out.measure += info.measure
		out.hit = out.hit || info.hit
		if res.Err == nil {
			out.degraded = rung
			break
		}
		if errors.Is(res.Err, ErrCellCanceled) {
			break // the whole run is being torn down; retrying is pointless
		}
	}
	// A canceled cell says nothing about the benchmark's health — don't let
	// a drain poison the consecutive-failure counters.
	quar.report(c.Bench.Name, res.Err != nil && !errors.Is(res.Err, ErrCellCanceled))
	return res, out
}
