package harness

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"wasmbench/internal/benchsuite"
	"wasmbench/internal/browser"
	"wasmbench/internal/ir"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{1, 1, 1}); g != 1 {
		t.Errorf("geomean(1,1,1) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	// Non-positive values are skipped.
	if g := GeoMean([]float64{-1, 0, 4}); g != 4 {
		t.Errorf("geomean with junk = %v", g)
	}
}

func TestGeoMeanScaleInvariance(t *testing.T) {
	// Property: geomean(k*x) = k * geomean(x) for positive inputs.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var vals, scaled []float64
		for _, r := range raw {
			v := float64(r)/16 + 0.5
			vals = append(vals, v)
			scaled = append(scaled, 3*v)
		}
		return math.Abs(GeoMean(scaled)-3*GeoMean(vals)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFiveNumberSummary(t *testing.T) {
	fn := Summarize([]float64{4, 1, 3, 2, 5})
	if fn.Min != 1 || fn.Max != 5 || fn.Median != 3 || fn.Q1 != 2 || fn.Q3 != 4 {
		t.Errorf("five-number: %+v", fn)
	}
	// Property: min ≤ q1 ≤ median ≤ q3 ≤ max always holds.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var vals []float64
		for _, r := range raw {
			vals = append(vals, float64(r))
		}
		fn := Summarize(vals)
		ordered := fn.Min <= fn.Q1 && fn.Q1 <= fn.Median &&
			fn.Median <= fn.Q3 && fn.Q3 <= fn.Max
		s := append([]float64(nil), vals...)
		sort.Float64s(s)
		return ordered && fn.Min == s[0] && fn.Max == s[len(s)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitSpeed(t *testing.T) {
	// Wasm 1ms vs JS 2ms twice (speedups of 2), wasm 4 vs js 2 once
	// (slowdown of 2).
	s := SplitSpeed([]float64{1, 1, 4}, []float64{2, 2, 2})
	if s.SUCount != 2 || s.SDCount != 1 {
		t.Fatalf("split counts: %+v", s)
	}
	if math.Abs(s.SUGmean-2) > 1e-9 || math.Abs(s.SDGmean-2) > 1e-9 {
		t.Errorf("split gmeans: %+v", s)
	}
	if !s.AllUp || math.Abs(s.AllGmean-math.Pow(2, 1.0/3)) > 1e-9 {
		t.Errorf("all gmean: %+v", s)
	}
}

func TestRunCellsEndToEnd(t *testing.T) {
	b, err := benchsuite.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	cells := []Cell{
		{Bench: b, Size: benchsuite.XS, Level: ir.O2, Lang: "wasm", Profile: browser.Chrome(browser.Desktop)},
		{Bench: b, Size: benchsuite.XS, Level: ir.O2, Lang: "js", Profile: browser.Chrome(browser.Desktop)},
	}
	results := RunCells(cells)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if results[0].Meas.ExecMS <= 0 || results[1].Meas.ExecMS <= 0 {
		t.Error("measurements missing")
	}
	// Both languages must produce the same program output.
	w := results[0].Meas.Result.OutputStrings()
	j := results[1].Meas.Result.OutputStrings()
	if len(w) == 0 || len(j) == 0 || w[0] != j[0] {
		t.Errorf("outputs differ: %v vs %v", w, j)
	}
}
