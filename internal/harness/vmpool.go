package harness

// This file wires the wasmvm instance pool into the parallel harness. The
// insight is the same one behind the artifact cache: a sweep measures each
// compiled artifact under many browser profiles, so the artifact's post-init
// snapshot — like its compiled module — can be shared across the worker
// pool. One InstancePool per artifact fingerprint serves all six profiles:
// the snapshot is fusion-keyed (profiles agree on fusion), while each
// profile's cost-table shape gets its own recycled free list. Cells that
// differ only in profile then skip module validation, lowering, fusion, and
// data-segment init entirely, and steady-state sweeps reuse reset instances.

import (
	"sync"

	"wasmbench/internal/compiler"
	"wasmbench/internal/telemetry"
	"wasmbench/internal/wasmvm"
)

// vmPoolSet shares one InstancePool per artifact fingerprint across the
// worker pool (and, when passed between runs, across sweeps). Safe for
// concurrent use.
type vmPoolSet struct {
	mu    sync.Mutex
	size  int
	inst  *telemetry.PoolInstruments
	pools map[string]*wasmvm.InstancePool
}

func newVMPoolSet(size int, inst *telemetry.PoolInstruments) *vmPoolSet {
	if size <= 0 {
		// One instance per worker plus a spare keeps a full worker pool
		// from ever blocking on checkout even before recycling starts.
		size = DefaultWorkers() + 1
	}
	return &vmPoolSet{size: size, inst: inst, pools: make(map[string]*wasmvm.InstancePool)}
}

// poolFor returns the pool for an artifact fingerprint, creating it on
// first use. Pools are created with ColdFallback on: a saturated pool
// degrades a checkout to a cold instantiation rather than blocking a
// harness worker behind another cell. nil receiver, JS artifacts, and
// artifacts without a module all yield nil (→ cold path).
func (ps *vmPoolSet) poolFor(fp string, art *compiler.Artifact) *wasmvm.InstancePool {
	if ps == nil || art == nil || art.Module == nil {
		return nil
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p := ps.pools[fp]
	if p == nil {
		p = wasmvm.NewInstancePool(art.Module, len(art.WasmBinary), wasmvm.PoolOptions{
			MaxInstances: ps.size,
			ColdFallback: true,
			Instruments:  ps.inst,
		})
		ps.pools[fp] = p
	}
	return p
}

// stats aggregates the checkout counters across every pool in the set.
func (ps *vmPoolSet) stats() wasmvm.PoolStats {
	var agg wasmvm.PoolStats
	if ps == nil {
		return agg
	}
	ps.mu.Lock()
	pools := make([]*wasmvm.InstancePool, 0, len(ps.pools))
	for _, p := range ps.pools {
		pools = append(pools, p)
	}
	ps.mu.Unlock()
	for _, p := range pools {
		s := p.Stats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Recycles += s.Recycles
		agg.ColdFallbacks += s.ColdFallbacks
		agg.Evictions += s.Evictions
		agg.Discards += s.Discards
		agg.Live += s.Live
		agg.Idle += s.Idle
	}
	return agg
}

// poolCount returns how many per-artifact pools the set holds.
func (ps *vmPoolSet) poolCount() int {
	if ps == nil {
		return 0
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.pools)
}

// VMPools is a caller-owned warm-instance pool set shared across many
// harness runs — the substrate a long-running server keeps so requests
// after the first are served from recycled, snapshot-reset VMs. Pass it
// via RunOptions.SharedVMPools (with VMPool set). Safe for concurrent use
// from overlapping RunCellsWith calls.
type VMPools struct {
	set *vmPoolSet
}

// NewVMPools builds a shared pool set. size bounds each per-artifact
// pool's live instances (<=0 selects the harness default); reg, when
// non-nil, receives the pool's checkout counters as pool_* metrics.
func NewVMPools(size int, reg *telemetry.Registry) *VMPools {
	var pi *telemetry.PoolInstruments
	if reg != nil {
		pi = telemetry.NewPoolInstruments(reg)
	}
	return &VMPools{set: newVMPoolSet(size, pi)}
}

// Stats aggregates checkout counters across every per-artifact pool.
func (vp *VMPools) Stats() wasmvm.PoolStats {
	if vp == nil {
		return wasmvm.PoolStats{}
	}
	return vp.set.stats()
}

// PoolCount reports how many per-artifact pools have been created.
func (vp *VMPools) PoolCount() int {
	if vp == nil {
		return 0
	}
	return vp.set.poolCount()
}
