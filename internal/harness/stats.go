// Package harness provides the study's measurement machinery (§3.4): the
// experiment runner that executes subject programs under browser profiles,
// and the statistics the paper reports — geometric means, speedup/slowdown
// splits, and five-number summaries.
package harness

import (
	"fmt"
	"math"
	"sort"
)

// GeoMean returns the geometric mean of positive values (non-positive
// values are skipped, matching ratio statistics).
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// FiveNum is a boxplot five-number summary (paper Fig. 11).
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary.
func Summarize(vals []float64) FiveNum {
	if len(vals) == 0 {
		return FiveNum{}
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		idx := p * float64(len(s)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		if lo == hi {
			return s[lo]
		}
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return FiveNum{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f", f.Min, f.Q1, f.Median, f.Q3, f.Max)
}

// SpeedSplit is the paper's Table 3/5 statistic: how many benchmarks run
// slower (SD) vs faster (SU) in Wasm than JS, with per-group geometric
// means and the overall geomean.
type SpeedSplit struct {
	SDCount  int
	SDGmean  float64 // slowdown factor geomean (>1 = JS faster)
	SUCount  int
	SUGmean  float64 // speedup factor geomean (>1 = Wasm faster)
	AllGmean float64 // >1 means Wasm faster overall
	AllUp    bool
}

// SplitSpeed computes the split from paired (wasmMS, jsMS) samples.
func SplitSpeed(wasmMS, jsMS []float64) SpeedSplit {
	var sd, su, all []float64
	for i := range wasmMS {
		if wasmMS[i] <= 0 || jsMS[i] <= 0 {
			continue
		}
		ratio := jsMS[i] / wasmMS[i] // >1: Wasm faster (speedup)
		all = append(all, ratio)
		if ratio >= 1 {
			su = append(su, ratio)
		} else {
			sd = append(sd, 1/ratio)
		}
	}
	out := SpeedSplit{
		SDCount: len(sd),
		SUCount: len(su),
		SDGmean: GeoMean(sd),
		SUGmean: GeoMean(su),
	}
	g := GeoMean(all)
	if g >= 1 {
		out.AllGmean = g
		out.AllUp = true
	} else if g > 0 {
		out.AllGmean = 1 / g
	}
	return out
}
