package harness

// This file wires one RunCellsWith invocation into a telemetry.Hub: live
// harness instruments (cell latency histograms, queue depth, robustness
// counters), a mutex-protected per-cell state table published as the
// hub's "cells" JSON provider (the workers' own metrics.Cells writes are
// index-disjoint and lock-free, so /debug/cells reads this copy instead),
// failure dumps of the flight-recorder window, and live-profile merging.
// A nil Hub (the default) makes every hook a no-op.

import (
	"sync"
	"time"

	"wasmbench/internal/faultinject"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
)

// CellState is the live, JSON-facing view of one cell in an in-flight
// sweep, served at /debug/cells while workers are still running.
type CellState struct {
	Label  string `json:"label"`
	Status string `json:"status"` // pending, running, ok, failed, quarantined, resumed
	Worker int    `json:"worker"`
	// Wall-clock split in milliseconds (0 until the cell finishes).
	WallMs    float64 `json:"wall_ms"`
	CompileMs float64 `json:"compile_ms"`
	MeasureMs float64 `json:"measure_ms"`
	// Cycles is the measurement's virtual-cycle total; TierUps the VM tier
	// promotions it observed. The three per-tier fields split the Wasm
	// instruction cycles by dispatcher (AOTCycles ⊆ OptCycles).
	Cycles      float64 `json:"cycles,omitempty"`
	BasicCycles float64 `json:"basic_cycles,omitempty"`
	OptCycles   float64 `json:"opt_cycles,omitempty"`
	AOTCycles   float64 `json:"aot_cycles,omitempty"`
	TierUps     int     `json:"tier_ups,omitempty"`
	Attempts    int     `json:"attempts,omitempty"`
	Degraded    string  `json:"degraded,omitempty"`
	CacheHit    bool    `json:"cache_hit,omitempty"`
	// VMPooled marks a Wasm measurement served through the instance pool;
	// VMPoolHit narrows it to a recycled (snapshot-reset) instance.
	VMPooled  bool `json:"vm_pooled,omitempty"`
	VMPoolHit bool `json:"vm_pool_hit,omitempty"`
}

// VMPoolState is the /debug/cells view of the run's instance pools:
// aggregate checkout counters across every per-artifact pool.
type VMPoolState struct {
	Pools         int `json:"pools"`
	Hits          int `json:"hits"`
	Misses        int `json:"misses"`
	Recycles      int `json:"recycles"`
	ColdFallbacks int `json:"cold_fallbacks"`
	Evictions     int `json:"evictions"`
	Discards      int `json:"discards"`
	Live          int `json:"live"`
	Idle          int `json:"idle"`
}

// SweepState is the /debug/cells payload: run-level aggregates plus the
// per-cell table.
type SweepState struct {
	Workers     int         `json:"workers"`
	Total       int         `json:"total"`
	Done        int         `json:"done"`
	Running     int         `json:"running"`
	Failed      int         `json:"failed"`
	Resumed     int         `json:"resumed"`
	Retries     int         `json:"retries"`
	Degraded    int         `json:"degraded"`
	Quarantined int         `json:"quarantined"`
	Faults      int         `json:"faults_injected"`
	QueueDepth  int         `json:"queue_depth"`
	Cache       CacheStats  `json:"cache"`
	// VMPool is present only when RunOptions.VMPool armed the instance
	// pools, so pool-less sweeps serve an unchanged payload.
	VMPool    *VMPoolState `json:"vm_pool,omitempty"`
	ElapsedMs float64      `json:"elapsed_ms"`
	Cells     []CellState  `json:"cells"`
}

// runTelemetry tracks one run's live state. A nil *runTelemetry is inert,
// so RunCellsWith calls its hooks unconditionally.
type runTelemetry struct {
	hub   *telemetry.Hub
	inst  *telemetry.HarnessInstruments
	cache *ArtifactCache
	pools *vmPoolSet
	plan  *faultinject.Plan
	start time.Time

	mu         sync.Mutex
	state      SweepState
	faultsSeen int
}

// newRunTelemetry arms the hub for one run (nil hub → nil tracker). It
// registers the harness instruments, publishes the "cells" provider, and
// threads cache instruments into the artifact cache.
func newRunTelemetry(hub *telemetry.Hub, cells []Cell, workers int, cache *ArtifactCache, pools *vmPoolSet, plan *faultinject.Plan, start time.Time) *runTelemetry {
	if hub == nil {
		return nil
	}
	rt := &runTelemetry{
		hub:   hub,
		inst:  telemetry.NewHarnessInstruments(hub.Registry()),
		cache: cache,
		pools: pools,
		plan:  plan,
		start: start,
	}
	if plan != nil {
		rt.faultsSeen = plan.TotalFired()
	}
	rt.state = SweepState{
		Workers: workers,
		Total:   len(cells),
		Cells:   make([]CellState, len(cells)),
	}
	for i, c := range cells {
		rt.state.Cells[i] = CellState{Label: c.Label(), Status: "pending"}
	}
	if cache != nil {
		cache.SetInstruments(telemetry.NewCacheInstruments(hub.Registry()),
			telemetry.NewCompilerInstruments(hub.Registry()))
	}
	hub.Publish("cells", rt.snapshot)
	return rt
}

// snapshot is the "cells" provider: a deep copy safe to marshal after the
// call returns.
func (rt *runTelemetry) snapshot() any {
	rt.mu.Lock()
	s := rt.state
	s.Cells = append([]CellState(nil), rt.state.Cells...)
	rt.mu.Unlock()
	if rt.cache != nil {
		s.Cache = rt.cache.Stats()
	}
	if rt.pools != nil {
		ps := rt.pools.stats()
		s.VMPool = &VMPoolState{
			Pools:         rt.pools.poolCount(),
			Hits:          ps.Hits,
			Misses:        ps.Misses,
			Recycles:      ps.Recycles,
			ColdFallbacks: ps.ColdFallbacks,
			Evictions:     ps.Evictions,
			Discards:      ps.Discards,
			Live:          ps.Live,
			Idle:          ps.Idle,
		}
	}
	s.ElapsedMs = float64(time.Since(rt.start)) / float64(time.Millisecond)
	return s
}

// resumed records a checkpoint-restored cell.
func (rt *runTelemetry) resumed(i int) {
	if rt == nil {
		return
	}
	rt.inst.Checkpoints.Inc()
	rt.mu.Lock()
	rt.state.Cells[i].Status = "resumed"
	rt.state.Resumed++
	rt.state.Done++
	rt.mu.Unlock()
}

// enqueued sets the initial queue-depth gauge.
func (rt *runTelemetry) enqueued(pending int) {
	if rt == nil {
		return
	}
	rt.inst.QueueDepth.Set(float64(pending))
	rt.mu.Lock()
	rt.state.QueueDepth = pending
	rt.mu.Unlock()
}

// cellStart marks a cell claimed by a worker.
func (rt *runTelemetry) cellStart(i, worker int) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	cs := &rt.state.Cells[i]
	cs.Status = "running"
	cs.Worker = worker
	rt.state.Running++
	rt.state.QueueDepth--
	depth := rt.state.QueueDepth
	rt.mu.Unlock()
	rt.inst.QueueDepth.Set(float64(depth))
}

// cellDone folds one finished cell into the live state, observes the
// latency histograms, and freezes a flight dump on failure.
func (rt *runTelemetry) cellDone(i int, r CellResult, cm obsv.CellMetric) {
	if rt == nil {
		return
	}
	rt.inst.CellsDone.Inc()
	rt.inst.CellWall.Observe(cm.Wall.Seconds())
	rt.inst.CellCompile.Observe(cm.Compile.Seconds())
	rt.inst.CellMeasure.Observe(cm.Measure.Seconds())
	if cm.Attempts > 1 {
		rt.inst.Retries.Add(float64(cm.Attempts - 1))
	}
	if cm.Degraded != "" {
		rt.inst.Degraded.Inc()
	}
	if cm.Quarantined {
		rt.inst.Quarantined.Inc()
	}

	cs := CellState{
		Label:       cm.Label,
		Status:      "ok",
		Worker:      cm.Worker,
		WallMs:      float64(cm.Wall) / float64(time.Millisecond),
		CompileMs:   float64(cm.Compile) / float64(time.Millisecond),
		MeasureMs:   float64(cm.Measure) / float64(time.Millisecond),
		BasicCycles: cm.BasicCycles,
		OptCycles:   cm.OptCycles,
		AOTCycles:   cm.AOTCycles,
		TierUps:     cm.TierUps,
		Attempts:    cm.Attempts,
		Degraded:    cm.Degraded,
		CacheHit:    cm.CacheHit,
		VMPooled:    cm.VMPooled,
		VMPoolHit:   cm.VMPoolHit,
	}
	switch {
	case cm.Quarantined:
		cs.Status = "quarantined"
	case cm.Failed:
		cs.Status = "failed"
	}
	if r.Meas != nil && r.Meas.Result != nil {
		cs.Cycles = r.Meas.Result.Cycles
		rt.inst.CellCycles.Observe(r.Meas.Result.Cycles)
		rt.hub.MergeProfiles(r.Meas.Result.Profiles)
	}

	rt.mu.Lock()
	rt.state.Cells[i] = cs
	rt.state.Running--
	rt.state.Done++
	if cm.Failed {
		rt.state.Failed++
	}
	if cm.Attempts > 1 {
		rt.state.Retries += cm.Attempts - 1
	}
	if cm.Degraded != "" {
		rt.state.Degraded++
	}
	if cm.Quarantined {
		rt.state.Quarantined++
	}
	if rt.plan != nil {
		cur := rt.plan.TotalFired()
		if d := cur - rt.faultsSeen; d > 0 {
			rt.inst.Faults.Add(float64(d))
			rt.state.Faults += d
		}
		rt.faultsSeen = cur
	}
	rt.mu.Unlock()

	if r.Err != nil {
		// Freeze the trace window that led up to the failure before newer
		// events overwrite it; /debug/trace?which=failure serves it.
		rt.inst.FlightFailures.Inc()
		rt.hub.DumpFlight(cm.Label + ": " + r.Err.Error())
	}
}
