// Package faultinject is a deterministic, seeded fault-plan layer for the
// measurement stack. The paper's methodology depends on sweeps surviving
// hostile conditions — mobile browsers cap per-tab memory and kill runaway
// pages, JIT compiles fail, workers crash — and a harness that claims to
// tolerate those failures needs a way to produce them on demand,
// reproducibly (cf. Jangda et al., "Not So Fast", ATC '19, on explicit
// resource limits and failure accounting in cross-engine harnesses).
//
// A Plan is a set of Rules armed at named injection Points threaded through
// the VMs, the compiler driver, and the harness worker pool. Every decision
// is a pure function of (seed, point, key, sequence number), so the same
// plan replayed over the same workload fires the same faults in the same
// order — which is what makes retry/degrade/quarantine behavior testable.
// A nil *Plan is inert: every method on it returns the zero decision, so
// call sites pay one nil check and the zero-fault path stays byte-identical
// to a build without fault injection.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one injection site in the stack.
type Point string

// Injection points.
const (
	// WasmGrowDeny denies memory.grow in the Wasm VM: with Rule.Limit set
	// it acts as a hard page cap (the mobile per-tab memory kill analogue,
	// PAPER.md §memory); with Prob/Count it fails individual grows.
	WasmGrowDeny Point = "wasm.grow-deny"
	// WasmRegTranslate fails the register-tier translation of a function,
	// forcing the stack-tier fallback (dispatch speed only — metrics are
	// unaffected by construction).
	WasmRegTranslate Point = "wasm.reg-translate"
	// WasmAOTTranslate fails the AOT superblock compilation of a hot
	// function, forcing the register-tier fallback (the first rung of the
	// AOT→register→stack bail ladder; dispatch speed only — metrics are
	// unaffected by construction).
	WasmAOTTranslate Point = "wasm.aot-translate"
	// WasmStall blocks the calling goroutine for Rule.Stall wall-clock time
	// on function entry — the "wedged cell" the harness deadline must catch.
	WasmStall Point = "wasm.stall"
	// WasmSnapshotRestore denies a pooled-instance checkout from the
	// post-init snapshot, forcing a silent cold instantiation (host-time
	// only — virtual metrics are identical by construction, so the fault
	// exercises the fallback plumbing, not the result).
	WasmSnapshotRestore Point = "wasm.snapshot-restore"
	// JSJITCompile fails a function's optimizing-JIT compile; the code
	// object is pinned to the interpreter tier (a permanent deopt).
	JSJITCompile Point = "js.jit-compile"
	// JSHeapOOM aborts a JS allocation: with Rule.Limit it is a heap byte
	// cap, with Prob/Count a transient allocation failure. The engine
	// reports ErrJSOOM, the analogue of a tab OOM kill.
	JSHeapOOM Point = "js.heap-oom"
	// CompilerPass fails a compilation in the optimization pipeline with a
	// transient InjectedError (a retry with an advanced sequence number can
	// succeed).
	CompilerPass Point = "compiler.pass"
	// CompilerCache fails a harness artifact-cache lookup before it reaches
	// the cache (the cache stays consistent; nothing is poisoned).
	CompilerCache Point = "compiler.cache"
	// HarnessPanic panics inside a harness worker while it runs a cell,
	// exercising the worker recover() path.
	HarnessPanic Point = "harness.worker-panic"
	// ServeAdmit fails benchserve admission of a request with a typed
	// InjectedError (surfaced as a 503 response, never a hang) —
	// the "admission controller broke" drill.
	ServeAdmit Point = "serve.admit"
	// ServeShed force-sheds a request at benchserve admission as if the
	// queue were full (429 + Retry-After), exercising the load-shedding
	// response path without needing a real overload.
	ServeShed Point = "serve.shed"
)

// AllPoints lists every injection point (the faults-smoke matrix iterates
// this; serve.* points are drilled by the internal/serve fault tests
// rather than the harness sweep, which has no admission path).
var AllPoints = []Point{
	WasmGrowDeny, WasmRegTranslate, WasmAOTTranslate, WasmStall,
	WasmSnapshotRestore,
	JSJITCompile, JSHeapOOM,
	CompilerPass, CompilerCache, HarnessPanic,
	ServeAdmit, ServeShed,
}

// Rule arms one injection point. Exactly one firing mode should be set:
//
//   - Count (with optional Skip): fire checks Skip..Skip+Count-1 of each
//     (point, key) sequence — the deterministic "fail the first N times"
//     transient fault.
//   - Prob: fire each check independently with this probability, seeded by
//     the plan (0 < Prob ≤ 1).
//   - Limit: threshold semantics for the capacity points — a page cap for
//     WasmGrowDeny (deny any grow that would exceed Limit pages), a byte
//     cap for JSHeapOOM (abort any allocation that would push the live heap
//     past Limit bytes). Limit rules fire on every violating check.
type Rule struct {
	Point Point
	Prob  float64
	Skip  int
	Count int
	Limit uint64
	// Stall is the wall-clock block duration for WasmStall rules.
	Stall time.Duration
	// Match restricts the rule to checks whose full key (cell context +
	// site key) contains this substring; "" matches everything.
	Match string
}

// Record is one fired fault, in firing order.
type Record struct {
	Point Point
	// Key is the full decision key: "cellLabel|siteKey" under a derived
	// cell plan, or just the site key on the root plan.
	Key string
	// Seq is the zero-based check sequence number at which the rule fired
	// (threshold firings reuse the current sequence position).
	Seq uint64
}

func (r Record) String() string {
	return fmt.Sprintf("%s[%s]#%d", r.Point, r.Key, r.Seq)
}

// planState is the mutable decision state shared by a root plan and every
// cell plan derived from it.
type planState struct {
	mu      sync.Mutex
	seq     map[string]uint64
	records []Record
	counts  map[Point]int
}

// Plan is an armed fault plan. The zero-value-free constructor is NewPlan;
// a nil *Plan is valid and inert. Derived cell plans (see Cell) share the
// root's rules, counters, and record log, so firing order is global.
// Safe for concurrent use.
type Plan struct {
	seed   uint64
	rules  map[Point][]Rule
	state  *planState
	ctx    string          // cell-context prefix for decision keys
	cancel <-chan struct{} // aborts in-flight stalls (per-cell deadline)
}

// NewPlan builds a plan from a seed and a rule set. Rules for the same
// point are checked in order; the check fires if any of them does.
func NewPlan(seed uint64, rules ...Rule) *Plan {
	m := make(map[Point][]Rule)
	for _, r := range rules {
		m[r.Point] = append(m[r.Point], r)
	}
	return &Plan{
		seed:  seed,
		rules: m,
		state: &planState{seq: make(map[string]uint64), counts: make(map[Point]int)},
	}
}

// Seed returns the plan's seed (0 for a nil plan).
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Enabled reports whether the plan has any armed rules.
func (p *Plan) Enabled() bool { return p != nil && len(p.rules) > 0 }

// Cell derives a per-cell view of the plan: decision keys are prefixed
// with label (so rules can Match individual cells and counters are
// per-cell), and in-flight stalls abort when cancel is closed. The derived
// plan shares the root's state; records land in one global log.
func (p *Plan) Cell(label string, cancel <-chan struct{}) *Plan {
	if p == nil {
		return nil
	}
	return &Plan{seed: p.seed, rules: p.rules, state: p.state, ctx: label, cancel: cancel}
}

// key builds the full decision key for a site key.
func (p *Plan) key(site string) string {
	if p.ctx == "" {
		return site
	}
	return p.ctx + "|" + site
}

// Fire checks point with the given site key, advancing the (point, key)
// sequence counter by one. It reports whether any armed Prob/Count rule
// fired (Limit rules are checked only by DenyGrow/HeapOOM). Nil-safe.
func (p *Plan) Fire(pt Point, site string) bool {
	fired, _ := p.check(pt, site, 0)
	return fired
}

// DenyGrow decides whether a memory.grow of delta pages at the current
// page count should be denied: Limit rules deny any grow whose result
// would exceed Limit pages; Prob/Count rules deny per the seeded sequence.
func (p *Plan) DenyGrow(site string, pages, delta uint32) bool {
	if p == nil || len(p.rules[WasmGrowDeny]) == 0 {
		return false
	}
	fired, _ := p.check(WasmGrowDeny, site, uint64(pages)+uint64(delta))
	return fired
}

// HeapOOM decides whether an allocation that would raise the live heap to
// bytes should fail: Limit rules fire when bytes exceeds Limit; Prob/Count
// rules fire per the seeded sequence.
func (p *Plan) HeapOOM(site string, bytes uint64) bool {
	if p == nil || len(p.rules[JSHeapOOM]) == 0 {
		return false
	}
	fired, _ := p.check(JSHeapOOM, site, bytes)
	return fired
}

// Stall checks the WasmStall point and, if a rule fires, blocks for the
// rule's Stall duration or until the plan's cancel channel closes,
// whichever comes first. It returns whether a stall fired (the block may
// have been cancelled).
func (p *Plan) Stall(site string) bool {
	if p == nil || len(p.rules[WasmStall]) == 0 {
		return false
	}
	fired, d := p.check(WasmStall, site, 0)
	if !fired {
		return false
	}
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.cancel: // nil channel: blocks forever, timer path decides
	}
	return true
}

// check runs the decision procedure: advance the sequence counter for
// (point, full key), evaluate every matching rule, and record a firing.
// measure carries the capacity value for Limit rules (resulting pages for
// WasmGrowDeny, resulting heap bytes for JSHeapOOM); it is ignored by
// Prob/Count rules. The returned duration is the longest Stall among the
// rules that fired.
func (p *Plan) check(pt Point, site string, measure uint64) (bool, time.Duration) {
	if p == nil {
		return false, 0
	}
	rules := p.rules[pt]
	key := p.key(site)
	sk := string(pt) + "\x00" + key

	st := p.state
	st.mu.Lock()
	n := st.seq[sk]
	st.seq[sk] = n + 1
	fired := false
	var stall time.Duration
	for i := range rules {
		r := &rules[i]
		if r.Match != "" && !strings.Contains(key, r.Match) {
			continue
		}
		hit := false
		switch {
		case r.Limit > 0:
			hit = measure > r.Limit
		case r.Count > 0:
			hit = n >= uint64(r.Skip) && n < uint64(r.Skip)+uint64(r.Count)
		case r.Prob > 0:
			hit = hash01(p.seed, pt, key, n, uint64(i)) < r.Prob
		}
		if hit {
			fired = true
			if r.Stall > stall {
				stall = r.Stall
			}
		}
	}
	if fired {
		st.records = append(st.records, Record{Point: pt, Key: key, Seq: n})
		st.counts[pt]++
	}
	st.mu.Unlock()
	return fired, stall
}

// Records returns a snapshot of every fired fault in firing order. With a
// single-threaded workload (harness Workers: 1) the order is fully
// deterministic; with concurrent workers, use Counts for scheduling-stable
// assertions.
func (p *Plan) Records() []Record {
	if p == nil {
		return nil
	}
	p.state.mu.Lock()
	defer p.state.mu.Unlock()
	return append([]Record(nil), p.state.records...)
}

// Counts returns the number of firings per point (scheduling-independent
// for plans whose decisions are, e.g. Count rules keyed by cell).
func (p *Plan) Counts() map[Point]int {
	if p == nil {
		return nil
	}
	p.state.mu.Lock()
	defer p.state.mu.Unlock()
	out := make(map[Point]int, len(p.state.counts))
	for k, v := range p.state.counts {
		out[k] = v
	}
	return out
}

// TotalFired returns the total number of fired faults.
func (p *Plan) TotalFired() int {
	if p == nil {
		return 0
	}
	p.state.mu.Lock()
	defer p.state.mu.Unlock()
	return len(p.state.records)
}

// InjectedError marks an error as fault-injected. Consumers that must not
// persist injected failures (the harness artifact cache) detect it with
// IsInjected.
type InjectedError struct {
	Point Point
	Msg   string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: %s: %s", e.Point, e.Msg)
}

// Errorf builds an InjectedError.
func Errorf(pt Point, format string, args ...any) error {
	return &InjectedError{Point: pt, Msg: fmt.Sprintf(format, args...)}
}

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var e *InjectedError
	return errors.As(err, &e)
}

// splitmix64 finalizer: the avalanche mix behind every seeded decision
// (same generator family as the difftest program generator).
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv1a hashes a string to 64 bits.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hash01 maps (seed, point, key, seq, rule index) to [0, 1).
func hash01(seed uint64, pt Point, key string, n, rule uint64) float64 {
	h := mix64(seed ^ fnv1a(string(pt)))
	h = mix64(h ^ fnv1a(key))
	h = mix64(h ^ n ^ rule<<32)
	return float64(h>>11) / (1 << 53)
}

// Jitter01 is the seeded jitter source for retry backoff: a deterministic
// value in [0, 1) for (seed, key, attempt). Exposed so the harness's
// backoff schedule replays exactly under a fixed seed.
func Jitter01(seed uint64, key string, attempt int) float64 {
	return hash01(seed, "retry-backoff", key, uint64(attempt), 0)
}

// ParseSpec parses a compact rule-list syntax for CLI flags:
//
//	point:param=val[,param=val][;point:...]
//
// Params: prob (float), count (int), skip (int), limit (uint), stall
// (Go duration), match (string). Example:
//
//	wasm.stall:count=2,stall=100ms;js.heap-oom:limit=1048576;harness.worker-panic:prob=0.05
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pt, params, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: rule %q: want point:param=val,...", part)
		}
		if !validPoint(Point(pt)) {
			return nil, fmt.Errorf("faultinject: unknown point %q (known: %s)", pt, knownPoints())
		}
		r := Rule{Point: Point(pt)}
		for _, kv := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: rule %q: bad param %q", part, kv)
			}
			var err error
			switch k {
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.Prob <= 0 || r.Prob > 1) {
					err = fmt.Errorf("prob out of (0,1]")
				}
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "skip":
				r.Skip, err = strconv.Atoi(v)
			case "limit":
				r.Limit, err = strconv.ParseUint(v, 10, 64)
			case "stall":
				r.Stall, err = time.ParseDuration(v)
			case "match":
				r.Match = v
			default:
				err = fmt.Errorf("unknown param %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: %s: %w", part, k, err)
			}
		}
		if r.Prob == 0 && r.Count == 0 && r.Limit == 0 {
			return nil, fmt.Errorf("faultinject: rule %q: needs prob=, count= or limit=", part)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func validPoint(pt Point) bool {
	for _, p := range AllPoints {
		if p == pt {
			return true
		}
	}
	return false
}

func knownPoints() string {
	names := make([]string, len(AllPoints))
	for i, p := range AllPoints {
		names[i] = string(p)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}
