package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.Fire(HarnessPanic, "x") || p.DenyGrow("f", 10, 5) || p.HeapOOM("h", 1<<30) || p.Stall("f") {
		t.Fatal("nil plan fired")
	}
	if p.Enabled() || p.Cell("c", nil) != nil || p.Records() != nil || p.TotalFired() != 0 {
		t.Fatal("nil plan not inert")
	}
}

func TestCountRule(t *testing.T) {
	p := NewPlan(1, Rule{Point: CompilerPass, Skip: 1, Count: 2})
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, p.Fire(CompilerPass, "atax"))
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("check %d: fired=%v want %v (seq %v)", i, got[i], want[i], got)
		}
	}
	if n := p.TotalFired(); n != 2 {
		t.Fatalf("TotalFired = %d, want 2", n)
	}
	// Independent keys have independent sequences.
	if !p.Fire(CompilerPass, "mvt") {
		// skip=1: first check must not fire
	} else {
		t.Fatal("fresh key fired at seq 0 despite skip=1")
	}
}

func TestProbDeterminismAcrossPlans(t *testing.T) {
	decisions := func(seed uint64) []bool {
		p := NewPlan(seed, Rule{Point: HarnessPanic, Prob: 0.3})
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, p.Fire(HarnessPanic, fmt.Sprintf("cell-%d", i%7)))
		}
		return out
	}
	a, b := decisions(42), decisions(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical plans", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob=0.3 fired %d/%d — not probabilistic", fired, len(a))
	}
	// A different seed must produce a different decision stream.
	c := decisions(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical decision streams")
	}
}

func TestLimitRules(t *testing.T) {
	p := NewPlan(0, Rule{Point: WasmGrowDeny, Limit: 100}, Rule{Point: JSHeapOOM, Limit: 1 << 20})
	if p.DenyGrow("f", 50, 50) {
		t.Fatal("grow to exactly the cap denied")
	}
	if !p.DenyGrow("f", 50, 51) {
		t.Fatal("grow past the cap allowed")
	}
	if p.HeapOOM("h", 1<<20) {
		t.Fatal("allocation at the cap failed")
	}
	if !p.HeapOOM("h", 1<<20+1) {
		t.Fatal("allocation past the cap succeeded")
	}
	// Limit rules do not respond to plain Fire.
	if p.Fire(WasmGrowDeny, "f") {
		t.Fatal("limit rule fired via Fire")
	}
}

func TestMatchRestrictsToCell(t *testing.T) {
	p := NewPlan(7, Rule{Point: HarnessPanic, Count: 10, Match: "atax/M"})
	hit := p.Cell("atax/M/wasm/-O2@chrome-desktop", nil)
	miss := p.Cell("mvt/M/wasm/-O2@chrome-desktop", nil)
	if !hit.Fire(HarnessPanic, "worker") {
		t.Fatal("matching cell did not fire")
	}
	if miss.Fire(HarnessPanic, "worker") {
		t.Fatal("non-matching cell fired")
	}
}

func TestStallBlocksAndCancels(t *testing.T) {
	p := NewPlan(3, Rule{Point: WasmStall, Count: 1, Stall: 20 * time.Millisecond})
	start := time.Now()
	if !p.Stall("main") {
		t.Fatal("stall did not fire")
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("stall returned after %v, want ≈20ms", d)
	}
	// Second check: count exhausted, no stall.
	start = time.Now()
	if p.Stall("main") {
		t.Fatal("stall fired twice with count=1")
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("non-firing stall blocked for %v", d)
	}
	// Cancelled stalls return early.
	p2 := NewPlan(3, Rule{Point: WasmStall, Count: 1, Stall: 10 * time.Second})
	cancel := make(chan struct{})
	close(cancel)
	cp := p2.Cell("cell", cancel)
	start = time.Now()
	if !cp.Stall("main") {
		t.Fatal("cancelled stall did not report firing")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancelled stall blocked for %v", d)
	}
}

func TestRecordsAndCounts(t *testing.T) {
	p := NewPlan(1, Rule{Point: CompilerPass, Count: 1}, Rule{Point: CompilerCache, Count: 1})
	c := p.Cell("atax/M", nil)
	c.Fire(CompilerPass, "atax")
	c.Fire(CompilerCache, "atax")
	c.Fire(CompilerPass, "atax") // exhausted
	recs := p.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %v", recs)
	}
	if recs[0].Point != CompilerPass || recs[0].Key != "atax/M|atax" || recs[0].Seq != 0 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	counts := p.Counts()
	if counts[CompilerPass] != 1 || counts[CompilerCache] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	p := NewPlan(9, Rule{Point: HarnessPanic, Count: 3})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cp := p.Cell(fmt.Sprintf("cell-%d", w), nil)
			for i := 0; i < 100; i++ {
				cp.Fire(HarnessPanic, "worker")
			}
		}(w)
	}
	wg.Wait()
	// Count rules are per-key: each of the 8 cells fires exactly 3 times
	// regardless of interleaving.
	if n := p.TotalFired(); n != 8*3 {
		t.Fatalf("TotalFired = %d, want 24", n)
	}
}

func TestInjectedError(t *testing.T) {
	err := Errorf(CompilerPass, "pass %s failed", "fold")
	if !IsInjected(err) {
		t.Fatal("IsInjected(Errorf(...)) = false")
	}
	wrapped := fmt.Errorf("cell: %w", err)
	if !IsInjected(wrapped) {
		t.Fatal("IsInjected lost through wrapping")
	}
	if IsInjected(errors.New("plain")) || IsInjected(nil) {
		t.Fatal("IsInjected false positive")
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("wasm.stall:count=2,stall=100ms; js.heap-oom:limit=1048576 ;harness.worker-panic:prob=0.05,match=atax")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %+v", rules)
	}
	if rules[0].Point != WasmStall || rules[0].Count != 2 || rules[0].Stall != 100*time.Millisecond {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Point != JSHeapOOM || rules[1].Limit != 1<<20 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2].Prob != 0.05 || rules[2].Match != "atax" {
		t.Fatalf("rule 2 = %+v", rules[2])
	}
	for _, bad := range []string{
		"nonsense",
		"no.such.point:count=1",
		"wasm.stall:count=x",
		"wasm.stall:match=justmatch", // no firing mode
		"harness.worker-panic:prob=1.5",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestJitterDeterministic(t *testing.T) {
	a := Jitter01(5, "cell", 1)
	if a != Jitter01(5, "cell", 1) {
		t.Fatal("jitter not deterministic")
	}
	if a < 0 || a >= 1 {
		t.Fatalf("jitter out of range: %v", a)
	}
	if a == Jitter01(5, "cell", 2) && Jitter01(5, "cell", 3) == Jitter01(5, "cell", 4) {
		t.Fatal("jitter constant across attempts")
	}
}
