package benchsuite

import "fmt"

// The §4.6.2 real-world applications, as analogues preserving the
// mechanisms the paper identifies:
//
//   - Long.js: 64-bit integer arithmetic. The Wasm side is C `long`
//     arithmetic (native i64); the JS side splits each 64-bit value into
//     four 16-bit limbs exactly as the Long.js library does to avoid
//     overflow — the instruction blow-up of Appendix D / Table 12.
//   - Hyphenopoly: Liang-style pattern hyphenation over byte buffers. Both
//     sides spend most time scanning text; Wasm is only marginally ahead.
//   - FFmpeg: a frame transcoding pipeline (DCT-like transform + quantize
//     per block). The Wasm implementation shards frames across WebWorkers
//     (the harness runs one VM instance per worker); the JS implementation
//     is serial — the parallelism, not the language, is the 0.275x.

// RealWorldOp names one Table 10 experiment row.
type RealWorldOp struct {
	App   string
	Op    string
	Input string
	// WasmSrc is minic source; JSSrc is hand-written JS.
	WasmSrc string
	JSSrc   string
	// Workers is the WebWorker count for the Wasm side (FFmpeg only).
	Workers int
}

// RealWorld returns the six Table 10 experiments.
func RealWorld() []*RealWorldOp {
	const nOps = 10000
	return []*RealWorldOp{
		{App: "Long.js", Op: "multiplication", Input: "10,000 mul", WasmSrc: longWasm("mul", nOps), JSSrc: longJS("mul", nOps)},
		{App: "Long.js", Op: "division", Input: "10,000 div", WasmSrc: longWasm("div", nOps), JSSrc: longJS("div", nOps)},
		{App: "Long.js", Op: "remainder", Input: "10,000 mod", WasmSrc: longWasm("mod", nOps), JSSrc: longJS("mod", nOps)},
		{App: "Hyphenopoly", Op: "en-us", Input: "18 KB English-like text", WasmSrc: hyphenWasm(1), JSSrc: hyphenJS(1)},
		{App: "Hyphenopoly", Op: "fr", Input: "18 KB French-like text", WasmSrc: hyphenWasm(2), JSSrc: hyphenJS(2)},
		{App: "FFmpeg", Op: "mp4 to avi", Input: "64-frame clip", WasmSrc: ffmpegWasm(), JSSrc: ffmpegJS(), Workers: 4},
	}
}

// longWasm builds the minic (→ i64) side of a Long.js experiment.
func longWasm(op string, n int) string {
	var body string
	switch op {
	case "mul":
		body = "r = r ^ (a * b);"
	case "div":
		body = "if (b != 0) { r = r ^ (a / b); }"
	default:
		body = "if (b != 0) { r = r ^ (a % b); }"
	}
	return fmt.Sprintf(`
int main() {
	long r = 0;
	long a; long b;
	int i;
	for (i = 1; i <= %d; i++) {
		a = (long)i * 2654435761 + 36;
		b = (long)(i %% 97) - 2;
		%s
	}
	print_i(r);
	return (int)(r & 65535);
}
`, n, body)
}

// longJS builds the JavaScript side: the Long.js representation (four
// 16-bit limbs per 64-bit value, long.js's own algorithms).
func longJS(op string, n int) string {
	var call string
	switch op {
	case "mul":
		call = "r = xor64(r, mul64(a, b));"
	case "div":
		call = "if (!isZero(b)) r = xor64(r, divmod64(a, b, false));"
	default:
		call = "if (!isZero(b)) r = xor64(r, divmod64(a, b, true));"
	}
	return longJSLib + fmt.Sprintf(`
var r = make64(0, 0);
for (var i = 1; i <= %d; i++) {
	var a = mul64(fromNumber(i), fromNumber(2654435761));
	a = add64(a, fromNumber(36));
	var b = fromNumber((i %% 97) - 2);
	%s
}
print_i64(r.low, r.high);
var __exit = r.low & 65535;
`, n, call)
}

// longJSLib is the Long.js-style 64-bit library: values are {low, high}
// pairs manipulated through 16-bit limbs (the library's overflow-avoidance
// representation, long.js src/long.js).
const longJSLib = `
function make64(low, high) { return { low: low | 0, high: high | 0 }; }
function fromNumber(v) {
	if (v < 0) { var p = fromNumber(-v); return neg64(p); }
	return make64(v % 4294967296, v / 4294967296);
}
function isZero(a) { return a.low == 0 && a.high == 0; }
function neg64(a) { return add64(not64(a), make64(1, 0)); }
function not64(a) { return make64(~a.low, ~a.high); }
function xor64(a, b) { return make64(a.low ^ b.low, a.high ^ b.high); }
function add64(a, b) {
	var a48 = a.high >>> 16, a32 = a.high & 0xFFFF, a16 = a.low >>> 16, a00 = a.low & 0xFFFF;
	var b48 = b.high >>> 16, b32 = b.high & 0xFFFF, b16 = b.low >>> 16, b00 = b.low & 0xFFFF;
	var c48 = 0, c32 = 0, c16 = 0, c00 = 0;
	c00 += a00 + b00; c16 += c00 >>> 16; c00 &= 0xFFFF;
	c16 += a16 + b16; c32 += c16 >>> 16; c16 &= 0xFFFF;
	c32 += a32 + b32; c48 += c32 >>> 16; c32 &= 0xFFFF;
	c48 += a48 + b48; c48 &= 0xFFFF;
	return make64((c16 << 16) | c00, (c48 << 16) | c32);
}
function sub64(a, b) { return add64(a, neg64(b)); }
function mul64(a, b) {
	var a48 = a.high >>> 16, a32 = a.high & 0xFFFF, a16 = a.low >>> 16, a00 = a.low & 0xFFFF;
	var b48 = b.high >>> 16, b32 = b.high & 0xFFFF, b16 = b.low >>> 16, b00 = b.low & 0xFFFF;
	var c48 = 0, c32 = 0, c16 = 0, c00 = 0;
	c00 += a00 * b00; c16 += c00 >>> 16; c00 &= 0xFFFF;
	c16 += a16 * b00; c32 += c16 >>> 16; c16 &= 0xFFFF;
	c16 += a00 * b16; c32 += c16 >>> 16; c16 &= 0xFFFF;
	c32 += a32 * b00; c48 += c32 >>> 16; c32 &= 0xFFFF;
	c32 += a16 * b16; c48 += c32 >>> 16; c32 &= 0xFFFF;
	c32 += a00 * b32; c48 += c32 >>> 16; c32 &= 0xFFFF;
	c48 += a48 * b00 + a32 * b16 + a16 * b32 + a00 * b48; c48 &= 0xFFFF;
	return make64((c16 << 16) | c00, (c48 << 16) | c32);
}
function lt64(a, b) {
	if (a.high != b.high) return (a.high >>> 0) < (b.high >>> 0);
	return (a.low >>> 0) < (b.low >>> 0);
}
function shl64(a, n) {
	n = n & 63;
	if (n == 0) return a;
	if (n < 32) return make64(a.low << n, (a.high << n) | (a.low >>> (32 - n)));
	return make64(0, a.low << (n - 32));
}
function shr64(a, n) {
	n = n & 63;
	if (n == 0) return a;
	if (n < 32) return make64((a.low >>> n) | (a.high << (32 - n)), a.high >>> n);
	return make64(a.high >>> (n - 32), 0);
}
function isNeg(a) { return a.high < 0; }
function divmod64(a, b, wantRem) {
	var negQ = false, negR = false;
	if (isNeg(a)) { a = neg64(a); negQ = !negQ; negR = true; }
	if (isNeg(b)) { b = neg64(b); negQ = !negQ; }
	var q = make64(0, 0), rem = make64(0, 0);
	for (var i = 63; i >= 0; i--) {
		rem = shl64(rem, 1);
		var bit;
		if (i >= 32) bit = (a.high >>> (i - 32)) & 1;
		else bit = (a.low >>> i) & 1;
		rem = make64(rem.low | bit, rem.high);
		if (!lt64(rem, b)) {
			rem = sub64(rem, b);
			if (i >= 32) q = make64(q.low, q.high | (1 << (i - 32)));
			else q = make64(q.low | (1 << i), q.high);
		}
	}
	if (wantRem) {
		if (negR) return neg64(rem);
		return rem;
	}
	if (negQ) return neg64(q);
	return q;
}
`

// hyphenWasm generates the minic hyphenator: deterministic text generation,
// Liang-style digram/trigram pattern scoring, and hyphen counting.
func hyphenWasm(lang int) string {
	return fmt.Sprintf(`
#define LANG %d
char text[18432];
int scores[18432];

void gen_text() {
	int i;
	unsigned s = (unsigned)(LANG * 2654435761);
	for (i = 0; i < 18432; i++) {
		s = s * 1664525 + 1013904223;
		if (s %% 6 == 0) {
			text[i] = ' ';
		} else {
			text[i] = (char)('a' + (s >> 8) %% 26);
		}
	}
}

int pat_score(int c1, int c2, int c3) {
	/* Deterministic "pattern table": digram/trigram weights. */
	int h = (c1 * 31 + c2) * 31 + c3 + LANG * 7;
	h = h %% 9;
	if (h < 0) h = 0 - h;
	return h;
}

int main() {
	int i;
	int hyphens = 0;
	gen_text();
	for (i = 0; i < 18432; i++) {
		scores[i] = 0;
	}
	for (i = 1; i < 18430; i++) {
		int c1 = text[i - 1];
		int c2 = text[i];
		int c3 = text[i + 1];
		if (c1 != ' ' && c2 != ' ' && c3 != ' ') {
			int sc = pat_score(c1, c2, c3);
			if (sc > scores[i]) {
				scores[i] = sc;
			}
		}
	}
	for (i = 2; i < 18428; i++) {
		if (scores[i] %% 2 == 1 && scores[i] > scores[i - 1] && scores[i] >= scores[i + 1]) {
			if (text[i - 1] != ' ' && text[i + 2] != ' ') {
				hyphens = hyphens + 1;
			}
		}
	}
	print_i((long)hyphens);
	return hyphens & 65535;
}
`, lang)
}

// hyphenJS is the JavaScript hyphenator: same algorithm over a string.
func hyphenJS(lang int) string {
	return fmt.Sprintf(`
var LANG = %d;
var n = 18432;
// Build the input text as a string (Hyphenopoly processes DOM text), then
// work over per-character codes.
var text = "";
(function () {
	var s = (LANG * 2654435761) >>> 0;
	var chunk = [];
	for (var i = 0; i < n; i++) {
		s = (Math.imul(s, 1664525) + 1013904223) >>> 0;
		if (s %% 6 == 0) chunk.push(32);
		else chunk.push(97 + (s >>> 8) %% 26);
	}
	for (var i = 0; i < n; i++) text = text + String.fromCharCode(chunk[i]);
})();
var codes = [];
for (var i = 0; i < n; i++) codes.push(text.charCodeAt(i));
function patScore(c1, c2, c3) {
	var h = (Math.imul(Math.imul(c1, 31) + c2, 31) + c3 + LANG * 7) %% 9;
	if (h < 0) h = -h;
	return h;
}
var scores = new Int32Array(n);
for (var i = 1; i < n - 2; i++) {
	var c1 = codes[i - 1], c2 = codes[i], c3 = codes[i + 1];
	if (c1 != 32 && c2 != 32 && c3 != 32) {
		var sc = patScore(c1, c2, c3);
		if (sc > scores[i]) scores[i] = sc;
	}
}
var hyphens = 0;
var parts = [];
for (var i = 2; i < n - 4; i++) {
	if (scores[i] %% 2 == 1 && scores[i] > scores[i - 1] && scores[i] >= scores[i + 1]) {
		if (codes[i - 1] != 32 && codes[i + 2] != 32) {
			hyphens++;
			parts.push(text.substring(i, i + 1));
		}
	}
}
// Hyphenopoly writes the soft-hyphenated text back to the DOM.
var outText = parts.join("\u00ad");
print_i(hyphens + outText.length * 0);
var __exit = hyphens & 65535;
`, lang)
}

// FFmpeg analogue parameters.
const (
	ffFrames    = 256
	ffBlockDim  = 8
	ffBlocksPer = 48 // blocks per frame
)

// ffmpegWasm transcodes frames [LO, HI): per block, an 8×8 DCT-like
// transform, quantization, and re-encode checksum. The harness runs one
// module instance per worker with disjoint ranges.
func ffmpegWasm() string {
	return fmt.Sprintf(`
double blk[64];
double tmp[64];
double costab[64];

void init_tab() {
	int i; int j;
	for (i = 0; i < 8; i++) {
		for (j = 0; j < 8; j++) {
			costab[i * 8 + j] = cos(3.14159265 * (double)((2 * i + 1) * j) / 16.0);
		}
	}
}

int process_frame(int f) {
	int b; int i; int j; int k;
	int acc = 0;
	for (b = 0; b < %d; b++) {
		for (i = 0; i < 64; i++) {
			blk[i] = (double)((f * 131 + b * 29 + i * 7) %% 256) - 128.0;
		}
		/* Row/column transform with the precomputed coefficient table. */
		for (i = 0; i < 8; i++) {
			for (j = 0; j < 8; j++) {
				double s = 0.0;
				for (k = 0; k < 8; k++) {
					s += blk[i * 8 + k] * costab[k * 8 + j];
				}
				tmp[i * 8 + j] = s / 2.0;
			}
		}
		for (i = 0; i < 8; i++) {
			for (j = 0; j < 8; j++) {
				double s = 0.0;
				for (k = 0; k < 8; k++) {
					s += tmp[k * 8 + j] * costab[k * 8 + i];
				}
				blk[i * 8 + j] = s / 2.0;
			}
		}
		for (i = 0; i < 64; i++) {
			int q = (int)(blk[i] / 8.0);
			acc += q * ((i %% 7) + 1);
		}
	}
	return acc;
}

int main() {
	int f;
	int acc = 0;
	init_tab();
	for (f = LO; f < HI; f++) {
		acc += process_frame(f);
	}
	print_i((long)acc);
	return acc & 65535;
}
`, ffBlocksPer)
}

// ffmpegJS is the serial JavaScript transcoder (node-ffmpeg style: no
// workers).
func ffmpegJS() string {
	return fmt.Sprintf(`
var FRAMES = %d, BLOCKS = %d;
var blk = [], tmp = [];
for (var i = 0; i < 64; i++) { blk.push(0); tmp.push(0); }
function processFrame(f) {
	var acc = 0;
	for (var b = 0; b < BLOCKS; b++) {
		for (var i = 0; i < 64; i++)
			blk[i] = ((f * 131 + b * 29 + i * 7) %% 256) - 128;
		for (var i = 0; i < 8; i++)
			for (var j = 0; j < 8; j++) {
				var s = 0;
				for (var k = 0; k < 8; k++)
					s += blk[i * 8 + k] * Math.cos(3.14159265 * ((2 * k + 1) * j) / 16);
				tmp[i * 8 + j] = s / 2;
			}
		for (var i = 0; i < 8; i++)
			for (var j = 0; j < 8; j++) {
				var s = 0;
				for (var k = 0; k < 8; k++)
					s += tmp[k * 8 + j] * Math.cos(3.14159265 * ((2 * k + 1) * i) / 16);
				blk[i * 8 + j] = s / 2;
			}
		for (var i = 0; i < 64; i++) {
			var q = ~~(blk[i] / 8);
			acc += q * ((i %% 7) + 1);
		}
	}
	return acc;
}
var acc = 0;
for (var f = 0; f < FRAMES; f++) acc += processFrame(f);
print_i(acc);
var __exit = acc & 65535;
`, ffFrames, ffBlocksPer)
}

// FFmpegFrames exposes the clip length for the harness's worker sharding.
const FFmpegFrames = ffFrames
