package benchsuite

import "fmt"

// The §4.6.1 subject programs: 9 benchmarks manually reimplemented in
// idiomatic JavaScript (regular arrays, objects, library helpers) — the
// way a web developer would write them, in contrast to the compiler's
// typed-array output. Where the paper used popular libraries, the same
// strata appear here: a math.js-style matrix library (mathlibJS), a pure-JS
// SHA implementation (the jsSHA stratum), and the W3C Web Cryptography API
// modeled as a native host digest.

// ManualJS is one manually-written JavaScript benchmark.
type ManualJS struct {
	Name string
	// Counterpart is the compiled benchmark it is compared against
	// (Table 9 rows).
	Counterpart string
	Source      string
}

// mathlibJS is the idiomatic matrix library (the math.js stratum): nested
// regular arrays, closures, bounds-flexible helpers.
const mathlibJS = `
var mathlib = {
	zeros: function (r, c) {
		var m = [];
		for (var i = 0; i < r; i++) {
			var row = [];
			for (var j = 0; j < c; j++) row.push(0);
			m.push(row);
		}
		return m;
	},
	matrix: function (r, c, f) {
		var m = [];
		for (var i = 0; i < r; i++) {
			var row = [];
			for (var j = 0; j < c; j++) row.push(f(i, j));
			m.push(row);
		}
		return m;
	},
	// Generic element accessors with validation, math.js-style: every
	// element access goes through a library call.
	get: function (m, i, j) {
		if (i < 0 || i >= m.length) throw "index";
		var row = m[i];
		if (j < 0 || j >= row.length) throw "index";
		return row[j];
	},
	set: function (m, i, j, v) {
		if (i < 0 || i >= m.length) throw "index";
		m[i][j] = v;
	},
	multiply: function (a, b) {
		var n = a.length, p = b[0].length, q = b.length;
		var out = mathlib.zeros(n, p);
		for (var i = 0; i < n; i++) {
			for (var j = 0; j < p; j++) {
				var acc = 0;
				for (var k = 0; k < q; k++) acc += mathlib.get(a, i, k) * mathlib.get(b, k, j);
				mathlib.set(out, i, j, acc);
			}
		}
		return out;
	},
	transpose: function (a) {
		var n = a.length, m = a[0].length;
		var out = mathlib.zeros(m, n);
		for (var i = 0; i < n; i++)
			for (var j = 0; j < m; j++) out[j][i] = a[i][j];
		return out;
	}
};
`

// ManualBenchmarks returns the 9 manually-written JS programs (11 Table 9
// rows: heat-3d and SHA each have two implementation strata).
func ManualBenchmarks() []*ManualJS {
	n := 26 // matches the compiled benchmarks' medium NC
	return []*ManualJS{
		{Name: "3mm", Counterpart: "3mm", Source: manual3mm(n)},
		{Name: "Covariance", Counterpart: "covariance", Source: manualCovariance(n)},
		{Name: "Syr2k", Counterpart: "syr2k", Source: manualSyr2k(n)},
		{Name: "Ludcmp", Counterpart: "ludcmp", Source: manualLudcmp(n)},
		{Name: "Floyd-warshall", Counterpart: "floyd-warshall", Source: manualFloyd(n)},
		{Name: "Heat-3d (plain)", Counterpart: "heat-3d", Source: manualHeat3dPlain(14, 8)},
		{Name: "Heat-3d (math.js)", Counterpart: "heat-3d", Source: manualHeat3dMathjs(14, 8)},
		{Name: "AES", Counterpart: "AES", Source: manualAES(20)},
		{Name: "BLOWFISH", Counterpart: "BLOWFISH", Source: manualBlowfish(10)},
		{Name: "SHA (W3C)", Counterpart: "SHA", Source: manualSHAW3C(10)},
		{Name: "SHA (jsSHA)", Counterpart: "SHA", Source: manualSHAJsSHA(10)},
	}
}

func manual3mm(n int) string {
	return mathlibJS + fmt.Sprintf(`
var N = %d;
var A = mathlib.matrix(N, N, function (i, j) { return ((i * j + 1) %% 5) / 5; });
var B = mathlib.matrix(N, N, function (i, j) { return ((i * (j + 1) + 2) %% 7) / 7; });
var C = mathlib.matrix(N, N, function (i, j) { return (i * (j + 3) %% 11) / 11; });
var D = mathlib.matrix(N, N, function (i, j) { return ((i * (j + 2) + 2) %% 13) / 13; });
var E = mathlib.multiply(A, B);
var F = mathlib.multiply(C, D);
var G = mathlib.multiply(E, F);
var s = 0;
for (var i = 0; i < N; i++)
	for (var j = 0; j < N; j++) s += G[i][j] * ((i + 2 * j) %% 7 + 1);
print_f(s);
var __exit = Math.floor(s * 100) %% 100000;
`, n)
}

func manualCovariance(n int) string {
	return mathlibJS + fmt.Sprintf(`
var N = %d;
var data = mathlib.matrix(N, N, function (i, j) { return ((i * j) %% 13) / 13; });
var mean = [];
for (var j = 0; j < N; j++) {
	var m = 0;
	for (var i = 0; i < N; i++) m += data[i][j];
	mean.push(m / N);
}
for (var i = 0; i < N; i++)
	for (var j = 0; j < N; j++) data[i][j] -= mean[j];
var cov = mathlib.zeros(N, N);
for (var i = 0; i < N; i++) {
	for (var j = i; j < N; j++) {
		var acc = 0;
		for (var k = 0; k < N; k++) acc += data[k][i] * data[k][j];
		acc = acc / (N - 1);
		cov[i][j] = acc;
		cov[j][i] = acc;
	}
}
var s = 0;
for (var i = 0; i < N; i++)
	for (var j = 0; j < N; j++) s += cov[i][j] * ((i + 2 * j) %% 7 + 1);
print_f(s);
var __exit = Math.floor(s * 100) %% 100000;
`, n)
}

func manualSyr2k(n int) string {
	return mathlibJS + fmt.Sprintf(`
var N = %d;
var alpha = 1.5, beta = 1.2;
var A = mathlib.matrix(N, N, function (i, j) { return ((i * j) %% 8) / 8; });
var B = mathlib.matrix(N, N, function (i, j) { return ((i * j + 1) %% 9) / 9; });
var C = mathlib.matrix(N, N, function (i, j) { return ((i + j) %% 10) / 10; });
for (var i = 0; i < N; i++) {
	for (var j = 0; j <= i; j++) C[i][j] *= beta;
	for (var k = 0; k < N; k++)
		for (var j = 0; j <= i; j++)
			C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
}
var s = 0;
for (var i = 0; i < N; i++)
	for (var j = 0; j < N; j++) s += C[i][j] * ((i + 2 * j) %% 7 + 1);
print_f(s);
var __exit = Math.floor(s * 100) %% 100000;
`, n)
}

func manualLudcmp(n int) string {
	return mathlibJS + fmt.Sprintf(`
var N = %d;
var A = mathlib.zeros(N, N);
for (var i = 0; i < N; i++) {
	for (var j = 0; j <= i; j++) A[i][j] = -(j %% N) / N + 1;
	A[i][i] = 1;
}
var Bm = mathlib.multiply(A, mathlib.transpose(A));
A = Bm;
var b = [], x = [], y = [];
for (var i = 0; i < N; i++) {
	b.push((i + 1) / N / 2 + 4);
	x.push(0);
	y.push(0);
}
for (var i = 0; i < N; i++) {
	for (var j = 0; j < i; j++) {
		var w = A[i][j];
		for (var k = 0; k < j; k++) w -= A[i][k] * A[k][j];
		A[i][j] = w / A[j][j];
	}
	for (var j = i; j < N; j++) {
		var w = A[i][j];
		for (var k = 0; k < i; k++) w -= A[i][k] * A[k][j];
		A[i][j] = w;
	}
}
for (var i = 0; i < N; i++) {
	var w = b[i];
	for (var j = 0; j < i; j++) w -= A[i][j] * y[j];
	y[i] = w;
}
for (var i = N - 1; i >= 0; i--) {
	var w = y[i];
	for (var j = i + 1; j < N; j++) w -= A[i][j] * x[j];
	x[i] = w / A[i][i];
}
var s = 0;
for (var i = 0; i < N; i++) s += x[i] * (i %% 5 + 1);
print_f(s);
var __exit = Math.floor(s * 100) %% 100000;
`, n)
}

func manualFloyd(n int) string {
	return fmt.Sprintf(`
var N = %d;
var path = [];
for (var i = 0; i < N; i++) {
	var row = [];
	for (var j = 0; j < N; j++) {
		var v = (i * j) %% 7 + 1;
		if ((i + j) %% 13 == 0 || (i + j) %% 7 == 0 || (i + j) %% 11 == 0) v = 999;
		row.push(v);
	}
	path.push(row);
}
for (var k = 0; k < N; k++)
	for (var i = 0; i < N; i++)
		for (var j = 0; j < N; j++)
			if (path[i][j] > path[i][k] + path[k][j]) path[i][j] = path[i][k] + path[k][j];
var s = 0;
for (var i = 0; i < N; i++)
	for (var j = 0; j < N; j++) s += path[i][j] * ((i + j) %% 3 + 1);
print_i(s);
var __exit = s %% 100000;
`, n)
}

func manualHeat3dPlain(n, ts int) string {
	return fmt.Sprintf(`
var N = %d, TS = %d;
function cube(f) {
	var a = [];
	for (var i = 0; i < N; i++) {
		var p = [];
		for (var j = 0; j < N; j++) {
			var r = [];
			for (var k = 0; k < N; k++) r.push(f(i, j, k));
			p.push(r);
		}
		a.push(p);
	}
	return a;
}
var A = cube(function (i, j, k) { return (i + j + (N - k)) * 10 / N; });
var B = cube(function (i, j, k) { return (i + j + (N - k)) * 10 / N; });
for (var t = 1; t <= TS; t++) {
	for (var i = 1; i < N - 1; i++)
		for (var j = 1; j < N - 1; j++)
			for (var k = 1; k < N - 1; k++)
				B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2 * A[i][j][k] + A[i - 1][j][k])
					+ 0.125 * (A[i][j + 1][k] - 2 * A[i][j][k] + A[i][j - 1][k])
					+ 0.125 * (A[i][j][k + 1] - 2 * A[i][j][k] + A[i][j][k - 1])
					+ A[i][j][k];
	for (var i = 1; i < N - 1; i++)
		for (var j = 1; j < N - 1; j++)
			for (var k = 1; k < N - 1; k++)
				A[i][j][k] = 0.125 * (B[i + 1][j][k] - 2 * B[i][j][k] + B[i - 1][j][k])
					+ 0.125 * (B[i][j + 1][k] - 2 * B[i][j][k] + B[i][j - 1][k])
					+ 0.125 * (B[i][j][k + 1] - 2 * B[i][j][k] + B[i][j][k - 1])
					+ B[i][j][k];
}
var s = 0;
for (var i = 0; i < N; i++)
	for (var j = 0; j < N; j++) s += A[i][j][(i + j) %% N];
print_f(s);
var __exit = Math.floor(s * 100) %% 100000;
`, n, ts)
}

func manualHeat3dMathjs(n, ts int) string {
	// The math.js stratum: plane-by-plane updates through library matrices
	// (extra allocation and indirection per step).
	return mathlibJS + fmt.Sprintf(`
var N = %d, TS = %d;
function cube() {
	var planes = [];
	for (var i = 0; i < N; i++) planes.push(mathlib.zeros(N, N));
	return planes;
}
var A = cube(), B = cube();
for (var i = 0; i < N; i++)
	for (var j = 0; j < N; j++)
		for (var k = 0; k < N; k++) {
			A[i][j][k] = (i + j + (N - k)) * 10 / N;
			B[i][j][k] = A[i][j][k];
		}
function step(src, dst) {
	for (var i = 1; i < N - 1; i++) {
		var up = src[i + 1], here = src[i], down = src[i - 1];
		var out = dst[i];
		for (var j = 1; j < N - 1; j++)
			for (var k = 1; k < N - 1; k++)
				out[j][k] = 0.125 * (up[j][k] - 2 * here[j][k] + down[j][k])
					+ 0.125 * (here[j + 1][k] - 2 * here[j][k] + here[j - 1][k])
					+ 0.125 * (here[j][k + 1] - 2 * here[j][k] + here[j][k - 1])
					+ here[j][k];
	}
}
for (var t = 1; t <= TS; t++) {
	step(A, B);
	step(B, A);
}
var s = 0;
for (var i = 0; i < N; i++)
	for (var j = 0; j < N; j++) s += A[i][j][(i + j) %% N];
print_f(s);
var __exit = Math.floor(s * 100) %% 100000;
`, n, ts)
}

func manualAES(reps int) string {
	// Hand bit-twiddled JS AES (the careful-implementation stratum the
	// paper found can beat compiled code): table-driven rounds over typed
	// arrays.
	return fmt.Sprintf(`
var REPS = %d;
var sbox = new Uint8Array(256);
function xtime(x) { x = x << 1; if (x & 256) x = (x ^ 27) & 255; return x & 255; }
function gmul(a, b) {
	var p = 0;
	for (var i = 0; i < 8; i++) {
		if (b & 1) p = p ^ a;
		a = xtime(a);
		b = b >> 1;
	}
	return p & 255;
}
(function () {
	sbox[0] = 99;
	for (var i = 1; i < 256; i++) {
		var inv = 0;
		for (var j = 1; j < 256; j++) if (gmul(i, j) == 1) { inv = j; break; }
		var s = inv ^ ((inv << 1) | (inv >> 7)) ^ ((inv << 2) | (inv >> 6)) ^ ((inv << 3) | (inv >> 5)) ^ ((inv << 4) | (inv >> 4));
		sbox[i] = (s & 255) ^ 99;
	}
})();
var rk = new Uint8Array(176);
function expand(key) {
	for (var i = 0; i < 16; i++) rk[i] = key[i];
	var rcon = 1;
	for (var i = 4; i < 44; i++) {
		var k = (i - 1) * 4;
		var t0 = rk[k], t1 = rk[k + 1], t2 = rk[k + 2], t3 = rk[k + 3];
		if (i %% 4 == 0) {
			var tmp = t0;
			t0 = sbox[t1] ^ rcon; t1 = sbox[t2]; t2 = sbox[t3]; t3 = sbox[tmp];
			rcon = xtime(rcon);
		}
		k = (i - 4) * 4;
		rk[i * 4] = rk[k] ^ t0; rk[i * 4 + 1] = rk[k + 1] ^ t1;
		rk[i * 4 + 2] = rk[k + 2] ^ t2; rk[i * 4 + 3] = rk[k + 3] ^ t3;
	}
}
var st = new Uint8Array(16);
function addkey(r) { for (var i = 0; i < 16; i++) st[i] = st[i] ^ rk[r * 16 + i]; }
function subbytes() { for (var i = 0; i < 16; i++) st[i] = sbox[st[i]]; }
function shiftrows() {
	var t = st[1]; st[1] = st[5]; st[5] = st[9]; st[9] = st[13]; st[13] = t;
	t = st[2]; st[2] = st[10]; st[10] = t; t = st[6]; st[6] = st[14]; st[14] = t;
	t = st[15]; st[15] = st[11]; st[11] = st[7]; st[7] = st[3]; st[3] = t;
}
function mixcols() {
	for (var c = 0; c < 4; c++) {
		var a0 = st[c * 4], a1 = st[c * 4 + 1], a2 = st[c * 4 + 2], a3 = st[c * 4 + 3];
		st[c * 4] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3;
		st[c * 4 + 1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3;
		st[c * 4 + 2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3);
		st[c * 4 + 3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2);
	}
}
var key = new Uint8Array(16);
for (var i = 0; i < 16; i++) key[i] = (i * 17 + 5) & 255;
expand(key);
var acc = 0;
for (var r = 0; r < REPS; r++) {
	for (var i = 0; i < 16; i++) st[i] = (r * 31 + i * 7) & 255;
	addkey(0);
	for (var rd = 1; rd < 10; rd++) { subbytes(); shiftrows(); mixcols(); addkey(rd); }
	subbytes(); shiftrows(); addkey(10);
	for (var i = 0; i < 16; i++) acc = (acc + st[i] * (i + 1)) & 16777215;
}
print_i(acc);
var __exit = acc & 65535;
`, reps)
}

func manualBlowfish(reps int) string {
	// Idiomatic JS port of the Feistel cipher: plain arrays and closures
	// (noticeably slower than both the compiled JS and the Wasm, Table 9).
	return fmt.Sprintf(`
var REPS = %d;
var P = [], S = [[], [], [], []];
var seed = 2654435769;
function nextRand() {
	seed = (Math.imul(seed, 1664525) + 1013904223) | 0;
	return seed >>> 0;
}
var xl = 0, xr = 0;
function F(x) {
	var h = (S[0][(x >>> 24) & 255] + S[1][(x >>> 16) & 255]) >>> 0;
	return (((h ^ S[2][(x >>> 8) & 255]) >>> 0) + S[3][x & 255]) >>> 0;
}
function encrypt() {
	for (var i = 0; i < 16; i++) {
		xl = (xl ^ P[i]) >>> 0;
		xr = (F(xl) ^ xr) >>> 0;
		var t = xl; xl = xr; xr = t;
	}
	var t = xl; xl = xr; xr = t;
	xr = (xr ^ P[16]) >>> 0;
	xl = (xl ^ P[17]) >>> 0;
}
function init(key) {
	seed = 2654435769;
	for (var i = 0; i < 18; i++) P.push(nextRand());
	for (var b = 0; b < 4; b++)
		for (var i = 0; i < 256; i++) S[b].push(nextRand());
	var j = 0;
	for (var i = 0; i < 18; i++) {
		var data = 0;
		for (var k = 0; k < 4; k++) {
			data = ((data << 8) | key[j]) >>> 0;
			j = (j + 1) %% key.length;
		}
		P[i] = (P[i] ^ data) >>> 0;
	}
	xl = 0; xr = 0;
	for (var i = 0; i < 18; i += 2) { encrypt(); P[i] = xl; P[i + 1] = xr; }
	for (var b = 0; b < 4; b++)
		for (var i = 0; i < 256; i += 2) { encrypt(); S[b][i] = xl; S[b][i + 1] = xr; }
}
var key = [];
for (var i = 0; i < 8; i++) key.push((i * 29 + 3) & 255);
init(key);
var acc = 0;
for (var r = 0; r < REPS; r++) {
	for (var b = 0; b < 16; b++) {
		xl = (r * 73 + b * 129 + 7) >>> 0;
		xr = (r * 41 + b * 57 + 11) >>> 0;
		encrypt();
		acc = (acc ^ xl ^ (xr >>> 3)) | 0;
	}
}
print_i(acc);
var __exit = acc & 65535;
`, reps)
}

func manualSHAW3C(reps int) string {
	// The W3C Web Cryptography stratum: the digest runs in native browser
	// code (crypto.subtle modeled synchronously), so JS does almost nothing.
	return fmt.Sprintf(`
var REPS = %d;
var acc = 0;
for (var r = 0; r < REPS; r++) {
	var msg = new Uint8Array(8192);
	for (var i = 0; i < 8192; i++) msg[i] = (i * 7 + r * 13 + 1) & 255;
	var h = crypto.subtle.digestSHA1(msg);
	acc = (acc ^ h[0] ^ h[2] ^ h[4]) | 0;
}
print_i(acc);
var __exit = acc & 65535;
`, reps)
}

func manualSHAJsSHA(reps int) string {
	// The pure-JS library stratum (jsSHA): full SHA-1 in JavaScript.
	return fmt.Sprintf(`
var REPS = %d;
function rol(x, n) { return ((x << n) | (x >>> (32 - n))) | 0; }
function sha1(msg) {
	var h0 = 1732584193 | 0, h1 = 4023233417 | 0, h2 = 2562383102 | 0, h3 = 271733878 | 0, h4 = 3285377520 | 0;
	var W = new Int32Array(80);
	for (var off = 0; off + 64 <= msg.length; off += 64) {
		for (var t = 0; t < 16; t++)
			W[t] = (msg[off + t * 4] << 24) | (msg[off + t * 4 + 1] << 16) | (msg[off + t * 4 + 2] << 8) | msg[off + t * 4 + 3];
		for (var t = 16; t < 80; t++) W[t] = rol(W[t - 3] ^ W[t - 8] ^ W[t - 14] ^ W[t - 16], 1);
		var a = h0, b = h1, c = h2, d = h3, e = h4;
		for (var t = 0; t < 80; t++) {
			var f, k;
			if (t < 20) { f = (b & c) | ((~b) & d); k = 1518500249; }
			else if (t < 40) { f = b ^ c ^ d; k = 1859775393; }
			else if (t < 60) { f = (b & c) | (b & d) | (c & d); k = 2400959708 | 0; }
			else { f = b ^ c ^ d; k = 3395469782 | 0; }
			var tmp = (rol(a, 5) + f + e + k + W[t]) | 0;
			e = d; d = c; c = rol(b, 30); b = a; a = tmp;
		}
		h0 = (h0 + a) | 0; h1 = (h1 + b) | 0; h2 = (h2 + c) | 0; h3 = (h3 + d) | 0; h4 = (h4 + e) | 0;
	}
	return [h0, h1, h2, h3, h4];
}
var acc = 0;
for (var r = 0; r < REPS; r++) {
	var msg = new Uint8Array(8192);
	for (var i = 0; i < 8192; i++) msg[i] = (i * 7 + r * 13 + 1) & 255;
	var h = sha1(msg);
	acc = (acc ^ h[0] ^ h[2] ^ h[4]) | 0;
}
print_i(acc);
var __exit = acc & 65535;
`, reps)
}
