package benchsuite

// The 30 PolyBenchC 4.2.1 kernels (paper Table 1), reimplemented in minic.
// Arrays are heap-allocated at the paper's dataset dimension NA (PolyBench
// itself allocates with polybench_alloc_data) and the kernels iterate the
// scaled extent NC with row stride NA. Initialization formulas follow the
// PolyBench conventions ((i*j % k) / k patterns) so results are
// deterministic across backends.

// PolyBench returns the 30 PolyBenchC benchmarks.
func PolyBench() []*Benchmark {
	return []*Benchmark{
		{Name: "covariance", Suite: "polybench", Category: "data mining", Source: srcCovariance, Sizes: matSizes(2, nil)},
		{Name: "correlation", Suite: "polybench", Category: "data mining", Source: srcCorrelation, Sizes: matSizes(2, nil)},
		{Name: "gemm", Suite: "polybench", Category: "BLAS", Source: srcGemm, Sizes: matSizes(3, nil)},
		{Name: "gemver", Suite: "polybench", Category: "BLAS", Source: srcGemver, Sizes: vecSizes(1)},
		{Name: "gesummv", Suite: "polybench", Category: "BLAS", Source: srcGesummv, Sizes: vecSizes(2)},
		{Name: "symm", Suite: "polybench", Category: "BLAS", Source: srcSymm, Sizes: matSizes(3, nil)},
		{Name: "syrk", Suite: "polybench", Category: "BLAS", Source: srcSyrk, Sizes: matSizes(2, nil)},
		{Name: "syr2k", Suite: "polybench", Category: "BLAS", Source: srcSyr2k, Sizes: matSizes(3, nil)},
		{Name: "trmm", Suite: "polybench", Category: "BLAS", Source: srcTrmm, Sizes: matSizes(2, nil)},
		{Name: "2mm", Suite: "polybench", Category: "linear algebra kernels", Source: src2mm, Sizes: matSizes(5, nil)},
		{Name: "3mm", Suite: "polybench", Category: "linear algebra kernels", Source: src3mm, Sizes: matSizes(7, nil)},
		{Name: "atax", Suite: "polybench", Category: "linear algebra kernels", Source: srcAtax, Sizes: vecSizes(1)},
		{Name: "bicg", Suite: "polybench", Category: "linear algebra kernels", Source: srcBicg, Sizes: vecSizes(1)},
		{Name: "doitgen", Suite: "polybench", Category: "linear algebra kernels", Source: srcDoitgen, Sizes: doitgenSizes()},
		{Name: "mvt", Suite: "polybench", Category: "linear algebra kernels", Source: srcMvt, Sizes: vecSizes(1)},
		{Name: "cholesky", Suite: "polybench", Category: "linear algebra solvers", Source: srcCholesky, Sizes: matSizes(2, nil)},
		{Name: "durbin", Suite: "polybench", Category: "linear algebra solvers", Source: srcDurbin, Sizes: vecSizes(0)},
		{Name: "gramschmidt", Suite: "polybench", Category: "linear algebra solvers", Source: srcGramschmidt, Sizes: matSizes(3, nil)},
		{Name: "lu", Suite: "polybench", Category: "linear algebra solvers", Source: srcLu, Sizes: matSizes(2, nil)},
		{Name: "ludcmp", Suite: "polybench", Category: "linear algebra solvers", Source: srcLudcmp, Sizes: matSizes(2, nil)},
		{Name: "trisolv", Suite: "polybench", Category: "linear algebra solvers", Source: srcTrisolv, Sizes: vecSizes(1)},
		{Name: "deriche", Suite: "polybench", Category: "image processing", Source: srcDeriche, Sizes: matSizes(4, nil)},
		{Name: "floyd-warshall", Suite: "polybench", Category: "graph algorithms", Source: srcFloydWarshall, Sizes: matSizes(1, nil)},
		{Name: "nussinov", Suite: "polybench", Category: "dynamic programming", Source: srcNussinov, Sizes: matSizes(1, nil)},
		{Name: "adi", Suite: "polybench", Category: "stencils", Source: srcAdi, Sizes: stencilSizes(6, map[Size]int{XS: 2, S: 3, M: 6, L: 10, XL: 14})},
		{Name: "fdtd-2d", Suite: "polybench", Category: "stencils", Source: srcFdtd2d, Sizes: stencilSizes(3, map[Size]int{XS: 3, S: 5, M: 10, L: 16, XL: 24})},
		{Name: "heat-3d", Suite: "polybench", Category: "stencils", Source: srcHeat3d, Sizes: heat3dSizes()},
		{Name: "jacobi-1d", Suite: "polybench", Category: "stencils", Source: srcJacobi1d, Sizes: jacobi1dSizes()},
		{Name: "jacobi-2d", Suite: "polybench", Category: "stencils", Source: srcJacobi2d, Sizes: stencilSizes(2, map[Size]int{XS: 3, S: 6, M: 12, L: 20, XL: 30})},
		{Name: "seidel-2d", Suite: "polybench", Category: "stencils", Source: srcSeidel2d, Sizes: stencilSizes(1, map[Size]int{XS: 3, S: 6, M: 12, L: 20, XL: 30})},
	}
}

func doitgenSizes() map[Size]SizeSpec {
	// A is NR×NQ×NP: cube of the dataset dimension.
	na := map[Size]int{XS: 10, S: 25, M: 60, L: 110, XL: 160}
	nc := map[Size]int{XS: 4, S: 8, M: 14, L: 20, XL: 26}
	out := map[Size]SizeSpec{}
	for _, sz := range AllSizes {
		need := (na[sz]*na[sz]*na[sz] + na[sz]*na[sz]) * 8 / (1 << 20)
		heapMB := 0
		if need > 5 {
			heapMB = need + need/4 + 4
		}
		out[sz] = SizeSpec{Defines: map[string]string{
			"NA": itoa(na[sz]), "NC": itoa(nc[sz]),
		}, HeapMB: heapMB}
	}
	return out
}

func heat3dSizes() map[Size]SizeSpec {
	na := map[Size]int{XS: 10, S: 20, M: 40, L: 90, XL: 180}
	nc := map[Size]int{XS: 5, S: 8, M: 14, L: 20, XL: 26}
	ts := map[Size]int{XS: 2, S: 4, M: 8, L: 12, XL: 16}
	out := map[Size]SizeSpec{}
	for _, sz := range AllSizes {
		need := 2 * na[sz] * na[sz] * na[sz] * 8 / (1 << 20)
		heapMB := 0
		if need > 5 {
			heapMB = need + need/4 + 4
		}
		out[sz] = SizeSpec{Defines: map[string]string{
			"NA": itoa(na[sz]), "NC": itoa(nc[sz]), "TS": itoa(ts[sz]),
		}, HeapMB: heapMB}
	}
	return out
}

func jacobi1dSizes() map[Size]SizeSpec {
	n := map[Size]int{XS: 200, S: 1000, M: 8000, L: 120000, XL: 400000}
	nc := map[Size]int{XS: 120, S: 600, M: 4000, L: 20000, XL: 50000}
	ts := map[Size]int{XS: 4, S: 8, M: 16, L: 30, XL: 50}
	out := map[Size]SizeSpec{}
	for _, sz := range AllSizes {
		out[sz] = SizeSpec{Defines: map[string]string{
			"NA": itoa(n[sz]), "NC": itoa(nc[sz]), "TS": itoa(ts[sz]),
		}}
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [16]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

const polyCommon = `
double checksum_mat(double* X, int n) {
	int i; int j;
	double s = 0.0;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			s += X[i * NA + j] * (double)((i + 2 * j) % 7 + 1);
		}
	}
	return s;
}

double checksum_vec(double* x, int n) {
	int i;
	double s = 0.0;
	for (i = 0; i < n; i++) {
		s += x[i] * (double)(i % 5 + 1);
	}
	return s;
}

void emit(double s) {
	print_f(s);
}
`

const srcCovariance = polyCommon + `
double* data;
double* cov;
double* mean;

int main() {
	int i; int j; int k;
	double float_n = (double)NC;
	data = (double*)malloc(NA * NA * 8);
	cov = (double*)malloc(NA * NA * 8);
	mean = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			data[i * NA + j] = (double)((i * j) % 13) / 13.0;
		}
	}
	for (j = 0; j < NC; j++) {
		mean[j] = 0.0;
		for (i = 0; i < NC; i++) {
			mean[j] += data[i * NA + j];
		}
		mean[j] = mean[j] / float_n;
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			data[i * NA + j] -= mean[j];
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = i; j < NC; j++) {
			double acc = 0.0;
			for (k = 0; k < NC; k++) {
				acc += data[k * NA + i] * data[k * NA + j];
			}
			acc = acc / (float_n - 1.0);
			cov[i * NA + j] = acc;
			cov[j * NA + i] = acc;
		}
	}
	emit(checksum_mat(cov, NC));
	return (int)fmod(checksum_mat(cov, NC) * 100.0, 100000.0);
}
`

const srcCorrelation = polyCommon + `
double* data;
double* corr;
double* mean;
double* stddev;

int main() {
	int i; int j; int k;
	double float_n = (double)NC;
	double eps = 0.1;
	data = (double*)malloc(NA * NA * 8);
	corr = (double*)malloc(NA * NA * 8);
	mean = (double*)malloc(NA * 8);
	stddev = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			data[i * NA + j] = (double)((i * j + 3) % 11) / 11.0;
		}
	}
	for (j = 0; j < NC; j++) {
		mean[j] = 0.0;
		for (i = 0; i < NC; i++) {
			mean[j] += data[i * NA + j];
		}
		mean[j] = mean[j] / float_n;
	}
	for (j = 0; j < NC; j++) {
		stddev[j] = 0.0;
		for (i = 0; i < NC; i++) {
			stddev[j] += (data[i * NA + j] - mean[j]) * (data[i * NA + j] - mean[j]);
		}
		stddev[j] = sqrt(stddev[j] / float_n);
		if (stddev[j] <= eps) {
			stddev[j] = 1.0;
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			data[i * NA + j] -= mean[j];
			data[i * NA + j] = data[i * NA + j] / (sqrt(float_n) * stddev[j]);
		}
	}
	for (i = 0; i < NC; i++) {
		corr[i * NA + i] = 1.0;
		for (j = i + 1; j < NC; j++) {
			double acc = 0.0;
			for (k = 0; k < NC; k++) {
				acc += data[k * NA + i] * data[k * NA + j];
			}
			corr[i * NA + j] = acc;
			corr[j * NA + i] = acc;
		}
	}
	emit(checksum_mat(corr, NC));
	return (int)fmod(checksum_mat(corr, NC) * 100.0, 100000.0);
}
`

const srcGemm = polyCommon + `
double* A;
double* B;
double* C;

int main() {
	int i; int j; int k;
	double alpha = 1.5;
	double beta = 1.2;
	A = (double*)malloc(NA * NA * 8);
	B = (double*)malloc(NA * NA * 8);
	C = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i * j + 1) % 7) / 7.0;
			B[i * NA + j] = (double)((i * j + 2) % 11) / 11.0;
			C[i * NA + j] = (double)((i - j + 13) % 13) / 13.0;
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			C[i * NA + j] *= beta;
		}
		for (k = 0; k < NC; k++) {
			for (j = 0; j < NC; j++) {
				C[i * NA + j] += alpha * A[i * NA + k] * B[k * NA + j];
			}
		}
	}
	emit(checksum_mat(C, NC));
	return (int)fmod(checksum_mat(C, NC) * 100.0, 100000.0);
}
`

const srcGemver = polyCommon + `
double* A;
double* u1; double* v1; double* u2; double* v2;
double* w; double* x; double* y; double* z;

int main() {
	int i; int j;
	double alpha = 1.5;
	double beta = 1.2;
	A = (double*)malloc(NA * NA * 8);
	u1 = (double*)malloc(NA * 8); v1 = (double*)malloc(NA * 8);
	u2 = (double*)malloc(NA * 8); v2 = (double*)malloc(NA * 8);
	w = (double*)malloc(NA * 8); x = (double*)malloc(NA * 8);
	y = (double*)malloc(NA * 8); z = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		u1[i] = (double)(i % 9) / 9.0;
		u2[i] = (double)((i + 1) % 7) / 7.0;
		v1[i] = (double)((i + 2) % 5) / 5.0;
		v2[i] = (double)((i + 3) % 11) / 11.0;
		y[i] = (double)((i + 4) % 13) / 13.0;
		z[i] = (double)((i + 5) % 17) / 17.0;
		x[i] = 0.0;
		w[i] = 0.0;
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i * j) % 9) / 9.0;
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = A[i * NA + j] + u1[i] * v1[j] + u2[i] * v2[j];
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			x[i] = x[i] + beta * A[j * NA + i] * y[j];
		}
	}
	for (i = 0; i < NC; i++) {
		x[i] = x[i] + z[i];
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			w[i] = w[i] + alpha * A[i * NA + j] * x[j];
		}
	}
	emit(checksum_vec(w, NC));
	return (int)fmod(checksum_vec(w, NC) * 100.0, 100000.0);
}
`

const srcGesummv = polyCommon + `
double* A;
double* B;
double* x;
double* y;
double* tmp;

int main() {
	int i; int j;
	double alpha = 1.5;
	double beta = 1.2;
	A = (double*)malloc(NA * NA * 8);
	B = (double*)malloc(NA * NA * 8);
	x = (double*)malloc(NA * 8);
	y = (double*)malloc(NA * 8);
	tmp = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		x[i] = (double)(i % 11) / 11.0;
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i * j + 1) % 9) / 9.0;
			B[i * NA + j] = (double)((i * j + 2) % 7) / 7.0;
		}
	}
	for (i = 0; i < NC; i++) {
		tmp[i] = 0.0;
		y[i] = 0.0;
		for (j = 0; j < NC; j++) {
			tmp[i] = A[i * NA + j] * x[j] + tmp[i];
			y[i] = B[i * NA + j] * x[j] + y[i];
		}
		y[i] = alpha * tmp[i] + beta * y[i];
	}
	emit(checksum_vec(y, NC));
	return (int)fmod(checksum_vec(y, NC) * 100.0, 100000.0);
}
`

const srcSymm = polyCommon + `
double* A;
double* B;
double* C;

int main() {
	int i; int j; int k;
	double alpha = 1.5;
	double beta = 1.2;
	A = (double*)malloc(NA * NA * 8);
	B = (double*)malloc(NA * NA * 8);
	C = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i + j) % 9) / 9.0;
			B[i * NA + j] = (double)((i * 2 + j) % 11) / 11.0;
			C[i * NA + j] = (double)((i + j * 3) % 7) / 7.0;
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			double temp2 = 0.0;
			for (k = 0; k < i; k++) {
				C[k * NA + j] += alpha * B[i * NA + j] * A[i * NA + k];
				temp2 += B[k * NA + j] * A[i * NA + k];
			}
			C[i * NA + j] = beta * C[i * NA + j] + alpha * B[i * NA + j] * A[i * NA + i] + alpha * temp2;
		}
	}
	emit(checksum_mat(C, NC));
	return (int)fmod(checksum_mat(C, NC) * 100.0, 100000.0);
}
`

const srcSyrk = polyCommon + `
double* A;
double* C;

int main() {
	int i; int j; int k;
	double alpha = 1.5;
	double beta = 1.2;
	A = (double*)malloc(NA * NA * 8);
	C = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i * j + 4) % 9) / 9.0;
			C[i * NA + j] = (double)((i + j) % 13) / 13.0;
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j <= i; j++) {
			C[i * NA + j] *= beta;
		}
		for (k = 0; k < NC; k++) {
			for (j = 0; j <= i; j++) {
				C[i * NA + j] += alpha * A[i * NA + k] * A[j * NA + k];
			}
		}
	}
	emit(checksum_mat(C, NC));
	return (int)fmod(checksum_mat(C, NC) * 100.0, 100000.0);
}
`

const srcSyr2k = polyCommon + `
double* A;
double* B;
double* C;

int main() {
	int i; int j; int k;
	double alpha = 1.5;
	double beta = 1.2;
	A = (double*)malloc(NA * NA * 8);
	B = (double*)malloc(NA * NA * 8);
	C = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i * j) % 8) / 8.0;
			B[i * NA + j] = (double)((i * j + 1) % 9) / 9.0;
			C[i * NA + j] = (double)((i + j) % 10) / 10.0;
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j <= i; j++) {
			C[i * NA + j] *= beta;
		}
		for (k = 0; k < NC; k++) {
			for (j = 0; j <= i; j++) {
				C[i * NA + j] += A[j * NA + k] * alpha * B[i * NA + k] + B[j * NA + k] * alpha * A[i * NA + k];
			}
		}
	}
	emit(checksum_mat(C, NC));
	return (int)fmod(checksum_mat(C, NC) * 100.0, 100000.0);
}
`

const srcTrmm = polyCommon + `
double* A;
double* B;

int main() {
	int i; int j; int k;
	double alpha = 1.5;
	A = (double*)malloc(NA * NA * 8);
	B = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i + j) % 12) / 12.0;
			B[i * NA + j] = (double)((NC + i - j) % 5) / 5.0;
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			for (k = i + 1; k < NC; k++) {
				B[i * NA + j] += A[k * NA + i] * B[k * NA + j];
			}
			B[i * NA + j] = alpha * B[i * NA + j];
		}
	}
	emit(checksum_mat(B, NC));
	return (int)fmod(checksum_mat(B, NC) * 100.0, 100000.0);
}
`

const src2mm = polyCommon + `
double* tmp;
double* A;
double* B;
double* C;
double* D;

int main() {
	int i; int j; int k;
	double alpha = 1.5;
	double beta = 1.2;
	tmp = (double*)malloc(NA * NA * 8);
	A = (double*)malloc(NA * NA * 8);
	B = (double*)malloc(NA * NA * 8);
	C = (double*)malloc(NA * NA * 8);
	D = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i * j + 1) % 9) / 9.0;
			B[i * NA + j] = (double)((i * (j + 1)) % 7) / 7.0;
			C[i * NA + j] = (double)((i * (j + 3) + 1) % 11) / 11.0;
			D[i * NA + j] = (double)((i * (j + 2)) % 13) / 13.0;
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			tmp[i * NA + j] = 0.0;
			for (k = 0; k < NC; k++) {
				tmp[i * NA + j] += alpha * A[i * NA + k] * B[k * NA + j];
			}
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			D[i * NA + j] *= beta;
			for (k = 0; k < NC; k++) {
				D[i * NA + j] += tmp[i * NA + k] * C[k * NA + j];
			}
		}
	}
	emit(checksum_mat(D, NC));
	return (int)fmod(checksum_mat(D, NC) * 100.0, 100000.0);
}
`

const src3mm = polyCommon + `
double* A; double* B; double* C; double* D;
double* E; double* F; double* G;

int main() {
	int i; int j; int k;
	A = (double*)malloc(NA * NA * 8);
	B = (double*)malloc(NA * NA * 8);
	C = (double*)malloc(NA * NA * 8);
	D = (double*)malloc(NA * NA * 8);
	E = (double*)malloc(NA * NA * 8);
	F = (double*)malloc(NA * NA * 8);
	G = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i * j + 1) % 5) / 5.0;
			B[i * NA + j] = (double)((i * (j + 1) + 2) % 7) / 7.0;
			C[i * NA + j] = (double)(i * (j + 3) % 11) / 11.0;
			D[i * NA + j] = (double)((i * (j + 2) + 2) % 13) / 13.0;
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			E[i * NA + j] = 0.0;
			for (k = 0; k < NC; k++) {
				E[i * NA + j] += A[i * NA + k] * B[k * NA + j];
			}
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			F[i * NA + j] = 0.0;
			for (k = 0; k < NC; k++) {
				F[i * NA + j] += C[i * NA + k] * D[k * NA + j];
			}
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			G[i * NA + j] = 0.0;
			for (k = 0; k < NC; k++) {
				G[i * NA + j] += E[i * NA + k] * F[k * NA + j];
			}
		}
	}
	emit(checksum_mat(G, NC));
	return (int)fmod(checksum_mat(G, NC) * 100.0, 100000.0);
}
`

const srcAtax = polyCommon + `
double* A;
double* x;
double* y;
double* tmp;

int main() {
	int i; int j;
	A = (double*)malloc(NA * NA * 8);
	x = (double*)malloc(NA * 8);
	y = (double*)malloc(NA * 8);
	tmp = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		x[i] = 1.0 + (double)i / (double)NC;
		y[i] = 0.0;
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i + j) % NC) / (double)(5 * NC);
		}
	}
	for (i = 0; i < NC; i++) {
		tmp[i] = 0.0;
		for (j = 0; j < NC; j++) {
			tmp[i] = tmp[i] + A[i * NA + j] * x[j];
		}
		for (j = 0; j < NC; j++) {
			y[j] = y[j] + A[i * NA + j] * tmp[i];
		}
	}
	emit(checksum_vec(y, NC));
	return (int)fmod(checksum_vec(y, NC) * 100.0, 100000.0);
}
`

const srcBicg = polyCommon + `
double* A;
double* s;
double* q;
double* p;
double* r;

int main() {
	int i; int j;
	A = (double*)malloc(NA * NA * 8);
	s = (double*)malloc(NA * 8);
	q = (double*)malloc(NA * 8);
	p = (double*)malloc(NA * 8);
	r = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		p[i] = (double)(i % NC) / (double)NC;
		r[i] = (double)((i + 1) % NC) / (double)NC;
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i * (j + 1)) % NC) / (double)NC;
		}
	}
	for (i = 0; i < NC; i++) {
		s[i] = 0.0;
	}
	for (i = 0; i < NC; i++) {
		q[i] = 0.0;
		for (j = 0; j < NC; j++) {
			s[j] = s[j] + r[i] * A[i * NA + j];
			q[i] = q[i] + A[i * NA + j] * p[j];
		}
	}
	emit(checksum_vec(s, NC) + checksum_vec(q, NC));
	return (int)fmod((checksum_vec(s, NC) + checksum_vec(q, NC)) * 100.0, 100000.0);
}
`

const srcDoitgen = polyCommon + `
double* A;
double* C4;
double* sum;

int main() {
	int r; int q; int p; int s;
	A = (double*)malloc(NA * NA * NA * 8);
	C4 = (double*)malloc(NA * NA * 8);
	sum = (double*)malloc(NA * 8);
	for (r = 0; r < NC; r++) {
		for (q = 0; q < NC; q++) {
			for (p = 0; p < NC; p++) {
				A[(r * NA + q) * NA + p] = (double)((r * q + p) % NC) / (double)NC;
			}
		}
	}
	for (p = 0; p < NC; p++) {
		for (s = 0; s < NC; s++) {
			C4[p * NA + s] = (double)(p * s % NC) / (double)NC;
		}
	}
	for (r = 0; r < NC; r++) {
		for (q = 0; q < NC; q++) {
			for (p = 0; p < NC; p++) {
				sum[p] = 0.0;
				for (s = 0; s < NC; s++) {
					sum[p] += A[(r * NA + q) * NA + s] * C4[s * NA + p];
				}
			}
			for (p = 0; p < NC; p++) {
				A[(r * NA + q) * NA + p] = sum[p];
			}
		}
	}
	emit(checksum_vec(sum, NC));
	return (int)fmod(checksum_vec(sum, NC) * 100.0, 100000.0);
}
`

const srcMvt = polyCommon + `
double* A;
double* x1;
double* x2;
double* y1;
double* y2;

int main() {
	int i; int j;
	A = (double*)malloc(NA * NA * 8);
	x1 = (double*)malloc(NA * 8);
	x2 = (double*)malloc(NA * 8);
	y1 = (double*)malloc(NA * 8);
	y2 = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		x1[i] = (double)(i % NC) / (double)NC;
		x2[i] = (double)((i + 1) % NC) / (double)NC;
		y1[i] = (double)((i + 3) % NC) / (double)NC;
		y2[i] = (double)((i + 4) % NC) / (double)NC;
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)((i * j) % NC) / (double)NC;
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			x1[i] = x1[i] + A[i * NA + j] * y1[j];
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			x2[i] = x2[i] + A[j * NA + i] * y2[j];
		}
	}
	emit(checksum_vec(x1, NC) + checksum_vec(x2, NC));
	return (int)fmod((checksum_vec(x1, NC) + checksum_vec(x2, NC)) * 100.0, 100000.0);
}
`

const srcCholesky = polyCommon + `
double* A;

int main() {
	int i; int j; int k;
	A = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j <= i; j++) {
			A[i * NA + j] = (double)(0 - (j % NC)) / (double)NC + 1.0;
		}
		for (j = i + 1; j < NC; j++) {
			A[i * NA + j] = 0.0;
		}
		A[i * NA + i] = 1.0;
	}
	/* Make the matrix positive semi-definite: A = B * B^T. */
	{
		double* B = (double*)malloc(NA * NA * 8);
		for (i = 0; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				B[i * NA + j] = 0.0;
			}
		}
		for (i = 0; i < NC; i++) {
			for (j = 0; j <= i; j++) {
				for (k = 0; k < NC; k++) {
					B[i * NA + j] += A[i * NA + k] * A[j * NA + k];
				}
			}
		}
		for (i = 0; i < NC; i++) {
			for (j = 0; j <= i; j++) {
				A[i * NA + j] = B[i * NA + j];
			}
		}
		free(B);
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < i; j++) {
			for (k = 0; k < j; k++) {
				A[i * NA + j] -= A[i * NA + k] * A[j * NA + k];
			}
			A[i * NA + j] = A[i * NA + j] / A[j * NA + j];
		}
		for (k = 0; k < i; k++) {
			A[i * NA + i] -= A[i * NA + k] * A[i * NA + k];
		}
		A[i * NA + i] = sqrt(A[i * NA + i]);
	}
	emit(checksum_mat(A, NC));
	return (int)fmod(checksum_mat(A, NC) * 100.0, 100000.0);
}
`

const srcDurbin = polyCommon + `
double* r;
double* y;
double* z;

int main() {
	int i; int k;
	double alpha; double beta; double sum;
	r = (double*)malloc(NA * 8);
	y = (double*)malloc(NA * 8);
	z = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		r[i] = (double)(NC + 1 - i) / (double)(2 * NC);
	}
	y[0] = 0.0 - r[0];
	beta = 1.0;
	alpha = 0.0 - r[0];
	for (k = 1; k < NC; k++) {
		beta = (1.0 - alpha * alpha) * beta;
		sum = 0.0;
		for (i = 0; i < k; i++) {
			sum += r[k - i - 1] * y[i];
		}
		alpha = 0.0 - (r[k] + sum) / beta;
		for (i = 0; i < k; i++) {
			z[i] = y[i] + alpha * y[k - i - 1];
		}
		for (i = 0; i < k; i++) {
			y[i] = z[i];
		}
		y[k] = alpha;
	}
	emit(checksum_vec(y, NC));
	return (int)fmod(checksum_vec(y, NC) * 1000.0, 100000.0);
}
`

const srcGramschmidt = polyCommon + `
double* A;
double* R;
double* Q;

int main() {
	int i; int j; int k;
	double nrm;
	A = (double*)malloc(NA * NA * 8);
	R = (double*)malloc(NA * NA * 8);
	Q = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = ((double)((i * j + 1) % NC) / (double)NC) * 100.0 + 10.0;
			Q[i * NA + j] = 0.0;
			R[i * NA + j] = 0.0;
		}
	}
	for (k = 0; k < NC; k++) {
		nrm = 0.0;
		for (i = 0; i < NC; i++) {
			nrm += A[i * NA + k] * A[i * NA + k];
		}
		R[k * NA + k] = sqrt(nrm);
		for (i = 0; i < NC; i++) {
			Q[i * NA + k] = A[i * NA + k] / R[k * NA + k];
		}
		for (j = k + 1; j < NC; j++) {
			R[k * NA + j] = 0.0;
			for (i = 0; i < NC; i++) {
				R[k * NA + j] += Q[i * NA + k] * A[i * NA + j];
			}
			for (i = 0; i < NC; i++) {
				A[i * NA + j] = A[i * NA + j] - Q[i * NA + k] * R[k * NA + j];
			}
		}
	}
	emit(checksum_mat(R, NC) + checksum_mat(Q, NC));
	return (int)fmod((checksum_mat(R, NC) + checksum_mat(Q, NC)) * 100.0, 100000.0);
}
`

const srcLu = polyCommon + `
double* A;

int main() {
	int i; int j; int k;
	A = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j <= i; j++) {
			A[i * NA + j] = (double)(0 - (j % NC)) / (double)NC + 1.0;
		}
		for (j = i + 1; j < NC; j++) {
			A[i * NA + j] = 0.0;
		}
		A[i * NA + i] = 1.0;
	}
	{
		double* B = (double*)malloc(NA * NA * 8);
		for (i = 0; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				B[i * NA + j] = 0.0;
			}
		}
		for (i = 0; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				for (k = 0; k < NC; k++) {
					B[i * NA + j] += A[i * NA + k] * A[j * NA + k];
				}
			}
		}
		for (i = 0; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				A[i * NA + j] = B[i * NA + j];
			}
		}
		free(B);
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < i; j++) {
			for (k = 0; k < j; k++) {
				A[i * NA + j] -= A[i * NA + k] * A[k * NA + j];
			}
			A[i * NA + j] = A[i * NA + j] / A[j * NA + j];
		}
		for (j = i; j < NC; j++) {
			for (k = 0; k < i; k++) {
				A[i * NA + j] -= A[i * NA + k] * A[k * NA + j];
			}
		}
	}
	emit(checksum_mat(A, NC));
	return (int)fmod(checksum_mat(A, NC) * 100.0, 100000.0);
}
`

const srcLudcmp = polyCommon + `
double* A;
double* b;
double* x;
double* y;

int main() {
	int i; int j; int k;
	double w;
	A = (double*)malloc(NA * NA * 8);
	b = (double*)malloc(NA * 8);
	x = (double*)malloc(NA * 8);
	y = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		x[i] = 0.0;
		y[i] = 0.0;
		b[i] = (double)(i + 1) / (double)NC / 2.0 + 4.0;
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j <= i; j++) {
			A[i * NA + j] = (double)(0 - (j % NC)) / (double)NC + 1.0;
		}
		for (j = i + 1; j < NC; j++) {
			A[i * NA + j] = 0.0;
		}
		A[i * NA + i] = 1.0;
	}
	{
		double* B = (double*)malloc(NA * NA * 8);
		for (i = 0; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				B[i * NA + j] = 0.0;
			}
		}
		for (i = 0; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				for (k = 0; k < NC; k++) {
					B[i * NA + j] += A[i * NA + k] * A[j * NA + k];
				}
			}
		}
		for (i = 0; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				A[i * NA + j] = B[i * NA + j];
			}
		}
		free(B);
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < i; j++) {
			w = A[i * NA + j];
			for (k = 0; k < j; k++) {
				w -= A[i * NA + k] * A[k * NA + j];
			}
			A[i * NA + j] = w / A[j * NA + j];
		}
		for (j = i; j < NC; j++) {
			w = A[i * NA + j];
			for (k = 0; k < i; k++) {
				w -= A[i * NA + k] * A[k * NA + j];
			}
			A[i * NA + j] = w;
		}
	}
	for (i = 0; i < NC; i++) {
		w = b[i];
		for (j = 0; j < i; j++) {
			w -= A[i * NA + j] * y[j];
		}
		y[i] = w;
	}
	for (i = NC - 1; i >= 0; i--) {
		w = y[i];
		for (j = i + 1; j < NC; j++) {
			w -= A[i * NA + j] * x[j];
		}
		x[i] = w / A[i * NA + i];
	}
	emit(checksum_vec(x, NC));
	return (int)fmod(checksum_vec(x, NC) * 100.0, 100000.0);
}
`

const srcTrisolv = polyCommon + `
double* L;
double* x;
double* b;

int main() {
	int i; int j;
	L = (double*)malloc(NA * NA * 8);
	x = (double*)malloc(NA * 8);
	b = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		x[i] = 0.0 - 999.0;
		b[i] = (double)i;
		for (j = 0; j <= i; j++) {
			L[i * NA + j] = (double)(i + NC - j + 1) * 2.0 / (double)NC;
		}
	}
	for (i = 0; i < NC; i++) {
		x[i] = b[i];
		for (j = 0; j < i; j++) {
			x[i] -= L[i * NA + j] * x[j];
		}
		x[i] = x[i] / L[i * NA + i];
	}
	emit(checksum_vec(x, NC));
	return (int)fmod(checksum_vec(x, NC) * 100.0, 100000.0);
}
`

const srcDeriche = polyCommon + `
double* imgIn;
double* imgOut;
double* y1v;
double* y2v;

int main() {
	int i; int j;
	double alpha = 0.25;
	double k; double a1; double a2; double a3; double a4;
	double b1; double b2; double c1;
	double ym1; double ym2; double xm1; double tm1; double tm2; double yp1; double yp2; double xp1; double xp2;
	imgIn = (double*)malloc(NA * NA * 8);
	imgOut = (double*)malloc(NA * NA * 8);
	y1v = (double*)malloc(NA * NA * 8);
	y2v = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			imgIn[i * NA + j] = (double)((313 * i + 991 * j) % 65536) / 65535.0;
		}
	}
	k = (1.0 - exp(0.0 - alpha)) * (1.0 - exp(0.0 - alpha)) / (1.0 + 2.0 * alpha * exp(0.0 - alpha) - exp(2.0 * alpha));
	a1 = k;
	a2 = k * exp(0.0 - alpha) * (alpha - 1.0);
	a3 = k * exp(0.0 - alpha) * (alpha + 1.0);
	a4 = 0.0 - k * exp(0.0 - 2.0 * alpha);
	b1 = pow(2.0, 0.0 - alpha);
	b2 = 0.0 - exp(0.0 - 2.0 * alpha);
	c1 = 1.0;
	for (i = 0; i < NC; i++) {
		ym1 = 0.0;
		ym2 = 0.0;
		xm1 = 0.0;
		for (j = 0; j < NC; j++) {
			y1v[i * NA + j] = a1 * imgIn[i * NA + j] + a2 * xm1 + b1 * ym1 + b2 * ym2;
			xm1 = imgIn[i * NA + j];
			ym2 = ym1;
			ym1 = y1v[i * NA + j];
		}
	}
	for (i = 0; i < NC; i++) {
		yp1 = 0.0;
		yp2 = 0.0;
		xp1 = 0.0;
		xp2 = 0.0;
		for (j = NC - 1; j >= 0; j--) {
			y2v[i * NA + j] = a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2;
			xp2 = xp1;
			xp1 = imgIn[i * NA + j];
			yp2 = yp1;
			yp1 = y2v[i * NA + j];
		}
	}
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			imgOut[i * NA + j] = c1 * (y1v[i * NA + j] + y2v[i * NA + j]);
		}
	}
	tm1 = 0.0;
	tm2 = 0.0;
	emit(checksum_mat(imgOut, NC) + tm1 + tm2);
	return (int)fmod(checksum_mat(imgOut, NC) * 100.0, 100000.0);
}
`

const srcFloydWarshall = polyCommon + `
int* path;

int main() {
	int i; int j; int k;
	path = (int*)malloc(NA * NA * 4);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			path[i * NA + j] = i * j % 7 + 1;
			if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0) {
				path[i * NA + j] = 999;
			}
		}
	}
	for (k = 0; k < NC; k++) {
		for (i = 0; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				if (path[i * NA + j] > path[i * NA + k] + path[k * NA + j]) {
					path[i * NA + j] = path[i * NA + k] + path[k * NA + j];
				}
			}
		}
	}
	{
		int s = 0;
		for (i = 0; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				s += path[i * NA + j] * ((i + j) % 3 + 1);
			}
		}
		print_i((long)s);
		return s % 100000;
	}
}
`

const srcNussinov = polyCommon + `
int* table;
int* seq;

int max_score(int a, int b) {
	if (a >= b) return a;
	return b;
}

int match(int b1, int b2) {
	if (b1 + b2 == 3) return 1;
	return 0;
}

int main() {
	int i; int j; int k;
	table = (int*)malloc(NA * NA * 4);
	seq = (int*)malloc(NA * 4);
	for (i = 0; i < NC; i++) {
		seq[i] = (i + 1) % 4;
		for (j = 0; j < NC; j++) {
			table[i * NA + j] = 0;
		}
	}
	for (i = NC - 1; i >= 0; i--) {
		for (j = i + 1; j < NC; j++) {
			if (j - 1 >= 0) {
				table[i * NA + j] = max_score(table[i * NA + j], table[i * NA + j - 1]);
			}
			if (i + 1 < NC) {
				table[i * NA + j] = max_score(table[i * NA + j], table[(i + 1) * NA + j]);
			}
			if (j - 1 >= 0 && i + 1 < NC) {
				if (i < j - 1) {
					table[i * NA + j] = max_score(table[i * NA + j], table[(i + 1) * NA + j - 1] + match(seq[i], seq[j]));
				} else {
					table[i * NA + j] = max_score(table[i * NA + j], table[(i + 1) * NA + j - 1]);
				}
			}
			for (k = i + 1; k < j; k++) {
				table[i * NA + j] = max_score(table[i * NA + j], table[i * NA + k] + table[(k + 1) * NA + j]);
			}
		}
	}
	print_i((long)table[0 * NA + NC - 1]);
	return table[0 * NA + NC - 1];
}
`

const srcAdi = polyCommon + `
double* u;
double* v;
double* p;
double* q;

int main() {
	int t; int i; int j;
	double DX; double DY; double DT;
	double B1; double B2;
	double mul1; double mul2;
	double a; double b; double c; double d; double e; double f;
	u = (double*)malloc(NA * NA * 8);
	v = (double*)malloc(NA * NA * 8);
	p = (double*)malloc(NA * NA * 8);
	q = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			u[i * NA + j] = (double)(i + NC - j) / (double)NC;
			v[i * NA + j] = 0.0;
			p[i * NA + j] = 0.0;
			q[i * NA + j] = 0.0;
		}
	}
	DX = 1.0 / (double)NC;
	DY = 1.0 / (double)NC;
	DT = 1.0 / (double)TS;
	B1 = 2.0;
	B2 = 1.0;
	mul1 = B1 * DT / (DX * DX);
	mul2 = B2 * DT / (DY * DY);
	a = 0.0 - mul1 / 2.0;
	b = 1.0 + mul1;
	c = a;
	d = 0.0 - mul2 / 2.0;
	e = 1.0 + mul2;
	f = d;
	for (t = 1; t <= TS; t++) {
		for (i = 1; i < NC - 1; i++) {
			v[0 * NA + i] = 1.0;
			p[i * NA + 0] = 0.0;
			q[i * NA + 0] = v[0 * NA + i];
			for (j = 1; j < NC - 1; j++) {
				p[i * NA + j] = (0.0 - c) / (a * p[i * NA + j - 1] + b);
				q[i * NA + j] = ((0.0 - d) * u[j * NA + i - 1] + (1.0 + 2.0 * d) * u[j * NA + i] - f * u[j * NA + i + 1] - a * q[i * NA + j - 1]) / (a * p[i * NA + j - 1] + b);
			}
			v[(NC - 1) * NA + i] = 1.0;
			for (j = NC - 2; j >= 1; j--) {
				v[j * NA + i] = p[i * NA + j] * v[(j + 1) * NA + i] + q[i * NA + j];
			}
		}
		for (i = 1; i < NC - 1; i++) {
			u[i * NA + 0] = 1.0;
			p[i * NA + 0] = 0.0;
			q[i * NA + 0] = u[i * NA + 0];
			for (j = 1; j < NC - 1; j++) {
				p[i * NA + j] = (0.0 - f) / (d * p[i * NA + j - 1] + e);
				q[i * NA + j] = ((0.0 - a) * v[(i - 1) * NA + j] + (1.0 + 2.0 * a) * v[i * NA + j] - c * v[(i + 1) * NA + j] - d * q[i * NA + j - 1]) / (d * p[i * NA + j - 1] + e);
			}
			u[i * NA + NC - 1] = 1.0;
			for (j = NC - 2; j >= 1; j--) {
				u[i * NA + j] = p[i * NA + j] * u[i * NA + j + 1] + q[i * NA + j];
			}
		}
	}
	emit(checksum_mat(u, NC));
	return (int)fmod(checksum_mat(u, NC) * 100.0, 100000.0);
}
`

const srcFdtd2d = polyCommon + `
double* ex;
double* ey;
double* hz;

int main() {
	int t; int i; int j;
	ex = (double*)malloc(NA * NA * 8);
	ey = (double*)malloc(NA * NA * 8);
	hz = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			ex[i * NA + j] = (double)i * (double)(j + 1) / (double)NC;
			ey[i * NA + j] = (double)i * (double)(j + 2) / (double)NC;
			hz[i * NA + j] = (double)i * (double)(j + 3) / (double)NC;
		}
	}
	for (t = 0; t < TS; t++) {
		for (j = 0; j < NC; j++) {
			ey[0 * NA + j] = (double)t;
		}
		for (i = 1; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				ey[i * NA + j] = ey[i * NA + j] - 0.5 * (hz[i * NA + j] - hz[(i - 1) * NA + j]);
			}
		}
		for (i = 0; i < NC; i++) {
			for (j = 1; j < NC; j++) {
				ex[i * NA + j] = ex[i * NA + j] - 0.5 * (hz[i * NA + j] - hz[i * NA + j - 1]);
			}
		}
		for (i = 0; i < NC - 1; i++) {
			for (j = 0; j < NC - 1; j++) {
				hz[i * NA + j] = hz[i * NA + j] - 0.7 * (ex[i * NA + j + 1] - ex[i * NA + j] + ey[(i + 1) * NA + j] - ey[i * NA + j]);
			}
		}
	}
	emit(checksum_mat(hz, NC));
	return (int)fmod(checksum_mat(hz, NC) * 100.0, 100000.0);
}
`

const srcHeat3d = polyCommon + `
double* A;
double* B;

int main() {
	int t; int i; int j; int k;
	A = (double*)malloc(NA * NA * NA * 8);
	B = (double*)malloc(NA * NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			for (k = 0; k < NC; k++) {
				A[(i * NA + j) * NA + k] = (double)(i + j + (NC - k)) * 10.0 / (double)NC;
				B[(i * NA + j) * NA + k] = A[(i * NA + j) * NA + k];
			}
		}
	}
	for (t = 1; t <= TS; t++) {
		for (i = 1; i < NC - 1; i++) {
			for (j = 1; j < NC - 1; j++) {
				for (k = 1; k < NC - 1; k++) {
					B[(i * NA + j) * NA + k] = 0.125 * (A[((i + 1) * NA + j) * NA + k] - 2.0 * A[(i * NA + j) * NA + k] + A[((i - 1) * NA + j) * NA + k])
						+ 0.125 * (A[(i * NA + j + 1) * NA + k] - 2.0 * A[(i * NA + j) * NA + k] + A[(i * NA + j - 1) * NA + k])
						+ 0.125 * (A[(i * NA + j) * NA + k + 1] - 2.0 * A[(i * NA + j) * NA + k] + A[(i * NA + j) * NA + k - 1])
						+ A[(i * NA + j) * NA + k];
				}
			}
		}
		for (i = 1; i < NC - 1; i++) {
			for (j = 1; j < NC - 1; j++) {
				for (k = 1; k < NC - 1; k++) {
					A[(i * NA + j) * NA + k] = 0.125 * (B[((i + 1) * NA + j) * NA + k] - 2.0 * B[(i * NA + j) * NA + k] + B[((i - 1) * NA + j) * NA + k])
						+ 0.125 * (B[(i * NA + j + 1) * NA + k] - 2.0 * B[(i * NA + j) * NA + k] + B[(i * NA + j - 1) * NA + k])
						+ 0.125 * (B[(i * NA + j) * NA + k + 1] - 2.0 * B[(i * NA + j) * NA + k] + B[(i * NA + j) * NA + k - 1])
						+ B[(i * NA + j) * NA + k];
				}
			}
		}
	}
	{
		double s = 0.0;
		for (i = 0; i < NC; i++) {
			for (j = 0; j < NC; j++) {
				s += A[(i * NA + j) * NA + (i + j) % NC];
			}
		}
		emit(s);
		return (int)fmod(s * 100.0, 100000.0);
	}
}
`

const srcJacobi1d = polyCommon + `
double* A;
double* B;

int main() {
	int t; int i;
	A = (double*)malloc(NA * 8);
	B = (double*)malloc(NA * 8);
	for (i = 0; i < NC; i++) {
		A[i] = ((double)i + 2.0) / (double)NC;
		B[i] = ((double)i + 3.0) / (double)NC;
	}
	for (t = 0; t < TS; t++) {
		for (i = 1; i < NC - 1; i++) {
			B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
		}
		for (i = 1; i < NC - 1; i++) {
			A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
		}
	}
	emit(checksum_vec(A, NC));
	return (int)fmod(checksum_vec(A, NC) * 100.0, 100000.0);
}
`

const srcJacobi2d = polyCommon + `
double* A;
double* B;

int main() {
	int t; int i; int j;
	A = (double*)malloc(NA * NA * 8);
	B = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = (double)i * (double)(j + 2) / (double)NC;
			B[i * NA + j] = (double)i * (double)(j + 3) / (double)NC;
		}
	}
	for (t = 0; t < TS; t++) {
		for (i = 1; i < NC - 1; i++) {
			for (j = 1; j < NC - 1; j++) {
				B[i * NA + j] = 0.2 * (A[i * NA + j] + A[i * NA + j - 1] + A[i * NA + j + 1] + A[(i + 1) * NA + j] + A[(i - 1) * NA + j]);
			}
		}
		for (i = 1; i < NC - 1; i++) {
			for (j = 1; j < NC - 1; j++) {
				A[i * NA + j] = 0.2 * (B[i * NA + j] + B[i * NA + j - 1] + B[i * NA + j + 1] + B[(i + 1) * NA + j] + B[(i - 1) * NA + j]);
			}
		}
	}
	emit(checksum_mat(A, NC));
	return (int)fmod(checksum_mat(A, NC) * 100.0, 100000.0);
}
`

const srcSeidel2d = polyCommon + `
double* A;

int main() {
	int t; int i; int j;
	A = (double*)malloc(NA * NA * 8);
	for (i = 0; i < NC; i++) {
		for (j = 0; j < NC; j++) {
			A[i * NA + j] = ((double)i * (double)(j + 2) + 2.0) / (double)NC;
		}
	}
	for (t = 0; t <= TS - 1; t++) {
		for (i = 1; i <= NC - 2; i++) {
			for (j = 1; j <= NC - 2; j++) {
				A[i * NA + j] = (A[(i - 1) * NA + j - 1] + A[(i - 1) * NA + j] + A[(i - 1) * NA + j + 1]
					+ A[i * NA + j - 1] + A[i * NA + j] + A[i * NA + j + 1]
					+ A[(i + 1) * NA + j - 1] + A[(i + 1) * NA + j] + A[(i + 1) * NA + j + 1]) / 9.0;
			}
		}
	}
	emit(checksum_mat(A, NC));
	return (int)fmod(checksum_mat(A, NC) * 100.0, 100000.0);
}
`
