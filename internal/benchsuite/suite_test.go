package benchsuite

import (
	"reflect"
	"testing"

	"wasmbench/internal/codegen"
	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
	"wasmbench/internal/jsvm"
	"wasmbench/internal/wasmvm"
)

func TestSuiteComplete(t *testing.T) {
	all := All()
	if len(all) != 41 {
		t.Fatalf("expected 41 benchmarks (30 PolyBenchC + 11 CHStone), got %d", len(all))
	}
	poly, chs := 0, 0
	for _, b := range all {
		switch b.Suite {
		case "polybench":
			poly++
		case "chstone":
			chs++
		default:
			t.Errorf("%s: unknown suite %q", b.Name, b.Suite)
		}
		for _, sz := range AllSizes {
			if _, ok := b.Sizes[sz]; !ok {
				t.Errorf("%s: missing size %v", b.Name, sz)
			}
		}
	}
	if poly != 30 || chs != 11 {
		t.Errorf("suite split: %d polybench, %d chstone", poly, chs)
	}
}

// compileBench compiles one benchmark at one size.
func compileBench(t *testing.T, b *Benchmark, sz Size, level ir.OptLevel) *compiler.Artifact {
	t.Helper()
	art, err := compiler.Compile(b.Source, compiler.Options{
		Opt:        level,
		Defines:    b.Defines(sz),
		HeapLimit:  b.HeapLimitBytes(sz),
		ModuleName: b.Name,
	})
	if err != nil {
		t.Fatalf("%s/%v: compile: %v", b.Name, sz, err)
	}
	return art
}

// TestAllBenchmarksDifferential compiles every benchmark at XS with -O2 and
// requires identical outputs from the Wasm, JS, and x86 backends.
func TestAllBenchmarksDifferential(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			art := compileBench(t, b, XS, ir.O2)
			w, err := compiler.RunWasm(art, wasmvm.DefaultConfig())
			if err != nil {
				t.Fatalf("wasm: %v", err)
			}
			x, err := compiler.RunX86(art, codegen.DefaultX86Config())
			if err != nil {
				t.Fatalf("x86: %v", err)
			}
			j, err := compiler.RunJS(art, jsvm.DefaultConfig())
			if err != nil {
				t.Fatalf("js: %v", err)
			}
			if w.Exit != x.Exit {
				t.Errorf("wasm exit %d != x86 exit %d", w.Exit, x.Exit)
			}
			if j.Exit != x.Exit {
				t.Errorf("js exit %d != x86 exit %d", j.Exit, x.Exit)
			}
			if !reflect.DeepEqual(w.OutputStrings(), x.OutputStrings()) {
				t.Errorf("wasm output %v != x86 %v", w.OutputStrings(), x.OutputStrings())
			}
			if !reflect.DeepEqual(j.OutputStrings(), x.OutputStrings()) {
				t.Errorf("js output %v != x86 %v", j.OutputStrings(), x.OutputStrings())
			}
			if w.Steps == 0 {
				t.Error("benchmark did no work")
			}
		})
	}
}

// TestOptLevelsPreserveBehavior runs a representative subset across all
// measured optimization levels on the Wasm backend.
func TestOptLevelsPreserveBehavior(t *testing.T) {
	names := []string{"gemm", "covariance", "ADPCM", "SHA", "DFSIN", "nussinov", "MIPS"}
	levels := []ir.OptLevel{ir.O0, ir.O1, ir.O2, ir.Oz, ir.Ofast}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var ref []string
			var refExit int32
			for i, lv := range levels {
				art := compileBench(t, b, XS, lv)
				r, err := compiler.RunWasm(art, wasmvm.DefaultConfig())
				if err != nil {
					t.Fatalf("%v: %v", lv, err)
				}
				if i == 0 {
					ref = r.OutputStrings()
					refExit = r.Exit
					continue
				}
				if lv == ir.Ofast {
					// -Ofast is value-unsafe (fast-math): floating-point
					// outputs may differ in the last ULPs. The integer exit
					// checksum must still match.
					if r.Exit != refExit {
						t.Errorf("-Ofast exit %d vs %d", r.Exit, refExit)
					}
					continue
				}
				if r.Exit != refExit || !reflect.DeepEqual(r.OutputStrings(), ref) {
					t.Errorf("%v changed behavior: exit %d vs %d, %v vs %v",
						lv, r.Exit, refExit, r.OutputStrings(), ref)
				}
			}
		})
	}
}

// TestSizesScaleWork checks that larger input classes do strictly more work
// and that the L/XL memory classes allocate substantially more.
func TestSizesScaleWork(t *testing.T) {
	for _, name := range []string{"gemm", "jacobi-2d", "SHA"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var prevSteps uint64
		for _, sz := range []Size{XS, S, M} {
			art := compileBench(t, b, sz, ir.O2)
			r, err := compiler.RunWasm(art, wasmvm.DefaultConfig())
			if err != nil {
				t.Fatalf("%s/%v: %v", name, sz, err)
			}
			if r.Steps <= prevSteps {
				t.Errorf("%s/%v: steps %d not greater than previous %d", name, sz, r.Steps, prevSteps)
			}
			prevSteps = r.Steps
		}
	}
}

func TestLargeClassMemoryFootprint(t *testing.T) {
	b, err := ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	m := compileBench(t, b, M, ir.O2)
	l := compileBench(t, b, L, ir.O2)
	rm, err := compiler.RunWasm(m, wasmvm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rl, err := compiler.RunWasm(l, wasmvm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// L allocates 3 × 1000² × 8 ≈ 24 MB; M ≈ 1 MB.
	if rl.MemoryBytes < 20<<20 {
		t.Errorf("L memory = %d bytes, want ≥ 20 MiB", rl.MemoryBytes)
	}
	if rm.MemoryBytes > 8<<20 {
		t.Errorf("M memory = %d bytes, want ≤ 8 MiB", rm.MemoryBytes)
	}
}
