// Package benchsuite provides the study's subject programs (§4.1): the 41
// C benchmarks (30 PolyBenchC + 11 CHStone) in minic, the five input-size
// classes, the 9 manually-written JavaScript benchmarks, and the three
// real-world application analogues.
//
// Input sizing follows the substitution documented in DESIGN.md: each
// kernel allocates the *paper's* dataset dimensions (define NA etc.), so
// the memory metrics match the study, while the computed iteration space
// (define NC) is scaled down so the interpreted substrate finishes in
// laboratory time. Time *shape* across size classes is preserved because
// NC grows with the class.
package benchsuite

import "fmt"

// Size is an input-size class (§3.2).
type Size int

// The five input sizes.
const (
	XS Size = iota
	S
	M
	L
	XL
)

var sizeNames = [...]string{"XS", "S", "M", "L", "XL"}

func (s Size) String() string { return sizeNames[s] }

// AllSizes lists the classes in order.
var AllSizes = []Size{XS, S, M, L, XL}

// SizeSpec configures one size class of one benchmark.
type SizeSpec struct {
	// Defines are the -D macro values selecting the input.
	Defines map[string]string
	// HeapMB overrides cheerp-linear-heap-size when the default 8 MiB is
	// too small (the paper's §3.2 flag); 0 keeps the default.
	HeapMB int
}

// Benchmark is one subject program.
type Benchmark struct {
	Name     string
	Suite    string // "polybench" or "chstone"
	Category string // the paper's §4.1.1 use-case attribution
	Source   string
	Sizes    map[Size]SizeSpec
}

// HeapLimitBytes returns the heap limit for a size class (0 = toolchain
// default).
func (b *Benchmark) HeapLimitBytes(s Size) uint32 {
	mb := b.Sizes[s].HeapMB
	if mb == 0 {
		return 0
	}
	return uint32(mb) << 20
}

// Defines returns the macro set for a size class.
func (b *Benchmark) Defines(s Size) map[string]string {
	return b.Sizes[s].Defines
}

// All returns the 41 benchmarks: PolyBenchC first, then CHStone, in the
// paper's Table 1 order.
func All() []*Benchmark {
	out := append([]*Benchmark{}, PolyBench()...)
	return append(out, CHStone()...)
}

// ByName finds a benchmark.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("benchsuite: unknown benchmark %q", name)
}

// matSizes builds the standard matrix-kernel size table: NA is the paper's
// PolyBench dataset dimension (mini..extralarge), NC the computed extent.
// The L and XL classes need the heap limit raised for their 8–128 MiB of
// arrays (cheerp-linear-heap-size, §3.2). nArrays scales the heap budget.
func matSizes(nArrays int, extra map[Size]map[string]string) map[Size]SizeSpec {
	na := map[Size]int{XS: 16, S: 60, M: 200, L: 1000, XL: 2000}
	nc := map[Size]int{XS: 6, S: 12, M: 26, L: 40, XL: 56}
	out := map[Size]SizeSpec{}
	for _, sz := range AllSizes {
		d := map[string]string{
			"NA": fmt.Sprint(na[sz]),
			"NC": fmt.Sprint(nc[sz]),
		}
		for k, v := range extra[sz] {
			d[k] = v
		}
		heapMB := 0
		need := nArrays * na[sz] * na[sz] * 8 / (1 << 20)
		if need > 5 {
			heapMB = need + need/4 + 4
		}
		out[sz] = SizeSpec{Defines: d, HeapMB: heapMB}
	}
	return out
}

// vecSizes builds the size table for matrix-vector / 1D kernels: one N²
// matrix plus vectors; compute extent grows faster since work is O(N²).
func vecSizes(nMatrices int) map[Size]SizeSpec {
	na := map[Size]int{XS: 16, S: 60, M: 200, L: 1000, XL: 2000}
	nc := map[Size]int{XS: 10, S: 40, M: 140, L: 420, XL: 800}
	out := map[Size]SizeSpec{}
	for _, sz := range AllSizes {
		heapMB := 0
		need := nMatrices * na[sz] * na[sz] * 8 / (1 << 20)
		if need > 5 {
			heapMB = need + need/4 + 4
		}
		out[sz] = SizeSpec{
			Defines: map[string]string{
				"NA": fmt.Sprint(na[sz]),
				"NC": fmt.Sprint(nc[sz]),
			},
			HeapMB: heapMB,
		}
	}
	return out
}

// stencilSizes builds the size table for time-stepped stencils.
func stencilSizes(nArrays int, tsteps map[Size]int) map[Size]SizeSpec {
	base := matSizes(nArrays, nil)
	nc := map[Size]int{XS: 6, S: 10, M: 20, L: 30, XL: 40}
	for _, sz := range AllSizes {
		spec := base[sz]
		spec.Defines["NC"] = fmt.Sprint(nc[sz])
		spec.Defines["TS"] = fmt.Sprint(tsteps[sz])
		base[sz] = spec
	}
	return base
}

// repSizes builds CHStone-style size tables: fixed algorithm, scaled
// repetition count.
func repSizes(reps map[Size]int) map[Size]SizeSpec {
	out := map[Size]SizeSpec{}
	for _, sz := range AllSizes {
		out[sz] = SizeSpec{Defines: map[string]string{"REPS": fmt.Sprint(reps[sz])}}
	}
	return out
}

var defaultReps = map[Size]int{XS: 1, S: 3, M: 10, L: 30, XL: 80}
