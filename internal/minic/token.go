// Package minic implements the C-subset frontend used to author the study's
// benchmark programs: a tiny preprocessor (#define / -D), a lexer, a
// recursive-descent parser, a type checker, and the source transformations
// from §3.1 of the paper (exception handlers → error flags, union → struct
// with casts).
//
// The subset covers what PolyBenchC- and CHStone-style kernels need:
// char/int/unsigned/long/float/double scalars, multi-dimensional arrays,
// pointers, structs, enums as constants (via #define), full expression and
// statement grammars, and global initializers. As extensions that exist only
// to be *transformed away* (mirroring the paper's §3.1 methodology), the
// grammar also accepts try/catch/throw and union.
package minic

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStrLit
	TokPunct // operators and punctuation
	TokKeyword
)

// Token is a lexical token with source position.
type Token struct {
	Kind TokKind
	Text string
	// IntVal/FloatVal are set for literals.
	IntVal   int64
	FloatVal float64
	IsFloat  bool
	Line     int
	Col      int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokIntLit, TokFloatLit, TokCharLit:
		return t.Text
	case TokStrLit:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "unsigned": true, "signed": true,
	"struct": true, "union": true, "enum": true, "typedef": true,
	"const": true, "static": true, "extern": true, "volatile": true, "register": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"switch": true, "case": true, "default": true, "break": true,
	"continue": true, "return": true, "goto": true, "sizeof": true,
	// C++-isms accepted only so the §3.1 transformation can remove them.
	"try": true, "catch": true, "throw": true,
}

// Error is a frontend diagnostic with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("minic:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...interface{}) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
