package minic

import (
	"strconv"
	"strings"
)

// Lex tokenizes preprocessed source.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (lx *lexer) peekAt(off int) byte {
	if lx.pos+off < len(lx.src) {
		return lx.src[lx.pos+off]
	}
	return 0
}

func (lx *lexer) peek() byte { return lx.peekAt(0) }

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Multi-character punctuators, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := lx.peek()

	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
		return lx.lexNumber(line, col)

	case c == '\'':
		return lx.lexChar(line, col)

	case c == '"':
		return lx.lexString(line, col)
	}

	for _, p := range puncts {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			for range p {
				lx.advance()
			}
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, errf(line, col, "unexpected character %q", c)
}

func (lx *lexer) lexNumber(line, col int) (Token, error) {
	start := lx.pos
	isFloat := false
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.pos < len(lx.src) && lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.pos < len(lx.src) && (lx.peek() == 'e' || lx.peek() == 'E') {
			save := lx.pos
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			if isDigit(lx.peek()) {
				isFloat = true
				for lx.pos < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			} else {
				lx.pos = save
			}
		}
	}
	text := lx.src[start:lx.pos]
	// Suffixes: u, l, ul, ll, ull, f (case-insensitive).
	sufStart := lx.pos
	for lx.pos < len(lx.src) {
		s := lx.peek()
		if s == 'u' || s == 'U' || s == 'l' || s == 'L' || s == 'f' || s == 'F' {
			if (s == 'f' || s == 'F') && !isFloat && !strings.Contains(text, ".") {
				break // 'f' on an integer would be a hex-ish confusion; stop
			}
			lx.advance()
		} else {
			break
		}
	}
	suffix := strings.ToLower(lx.src[sufStart:lx.pos])
	if strings.Contains(suffix, "f") {
		isFloat = true
	}
	tok := Token{Line: line, Col: col, Text: text + suffix}
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(line, col, "bad float literal %q", text)
		}
		tok.Kind = TokFloatLit
		tok.FloatVal = f
		tok.IsFloat = true
		return tok, nil
	}
	var v uint64
	var err error
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		v, err = strconv.ParseUint(text[2:], 16, 64)
	} else if len(text) > 1 && text[0] == '0' {
		v, err = strconv.ParseUint(text[1:], 8, 64)
	} else {
		v, err = strconv.ParseUint(text, 10, 64)
	}
	if err != nil {
		return Token{}, errf(line, col, "bad integer literal %q", text)
	}
	tok.Kind = TokIntLit
	tok.IntVal = int64(v)
	return tok, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (lx *lexer) lexEscape(line, col int) (byte, error) {
	c := lx.advance()
	if c != '\\' {
		return c, nil
	}
	if lx.pos >= len(lx.src) {
		return 0, errf(line, col, "unterminated escape")
	}
	e := lx.advance()
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return e, nil
	case 'x':
		v := 0
		for lx.pos < len(lx.src) && isHexDigit(lx.peek()) {
			d := lx.advance()
			v = v*16 + hexVal(d)
		}
		return byte(v), nil
	}
	return 0, errf(line, col, "unknown escape \\%c", e)
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

func (lx *lexer) lexChar(line, col int) (Token, error) {
	lx.advance() // opening quote
	if lx.pos >= len(lx.src) {
		return Token{}, errf(line, col, "unterminated char literal")
	}
	v, err := lx.lexEscape(line, col)
	if err != nil {
		return Token{}, err
	}
	if lx.pos >= len(lx.src) || lx.peek() != '\'' {
		return Token{}, errf(line, col, "unterminated char literal")
	}
	lx.advance()
	return Token{Kind: TokCharLit, Text: string(v), IntVal: int64(v), Line: line, Col: col}, nil
}

func (lx *lexer) lexString(line, col int) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return Token{}, errf(line, col, "unterminated string literal")
		}
		if lx.peek() == '"' {
			lx.advance()
			break
		}
		v, err := lx.lexEscape(line, col)
		if err != nil {
			return Token{}, err
		}
		sb.WriteByte(v)
	}
	return Token{Kind: TokStrLit, Text: sb.String(), Line: line, Col: col}, nil
}
