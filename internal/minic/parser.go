package minic

import "fmt"

// Parse builds the AST for a preprocessed token stream.
func Parse(toks []Token) (*File, error) {
	p := &parser{toks: toks, structs: map[string]*StructInfo{}}
	f := &File{}
	for !p.at(TokEOF) {
		if err := p.parseTopLevel(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ParseSource preprocesses, lexes, and parses in one step.
func ParseSource(src string, defines map[string]string) (*File, error) {
	toks, err := Preprocess(src, defines)
	if err != nil {
		return nil, err
	}
	return Parse(toks)
}

type parser struct {
	toks    []Token
	pos     int
	structs map[string]*StructInfo
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *parser) atPunct(s string) bool {
	return p.cur().Kind == TokPunct && p.cur().Text == s
}

func (p *parser) atKw(s string) bool {
	return p.cur().Kind == TokKeyword && p.cur().Text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(s string) bool {
	if p.atKw(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		t := p.cur()
		return errf(t.Line, t.Col, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, errf(t.Line, t.Col, "expected identifier, got %s", t)
	}
	p.pos++
	return t, nil
}

// atTypeStart reports whether the current token begins a type.
func (p *parser) atTypeStart() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "void", "char", "short", "int", "long", "float", "double",
		"unsigned", "signed", "struct", "union", "const", "static",
		"extern", "volatile", "register":
		return true
	}
	return false
}

// parseBaseType parses qualifiers + a base type (no declarator).
func (p *parser) parseBaseType() (*Type, bool, error) {
	isStatic := false
	for {
		switch {
		case p.acceptKw("const"), p.acceptKw("volatile"), p.acceptKw("extern"), p.acceptKw("register"):
		case p.acceptKw("static"):
			isStatic = true
		default:
			goto qualsDone
		}
	}
qualsDone:
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, isStatic, errf(t.Line, t.Col, "expected type, got %s", t)
	}
	switch t.Text {
	case "struct", "union":
		isUnion := t.Text == "union"
		p.pos++
		st, err := p.parseStructRef(isUnion)
		if err != nil {
			return nil, isStatic, err
		}
		typ := &Type{Kind: KStruct, S: st}
		return p.finishQuals(typ), isStatic, nil
	case "void":
		p.pos++
		return p.finishQuals(TVoid), isStatic, nil
	}

	unsigned, signed := false, false
	var base string
	for p.cur().Kind == TokKeyword {
		switch p.cur().Text {
		case "unsigned":
			unsigned = true
			p.pos++
		case "signed":
			signed = true
			p.pos++
		case "char", "short", "int", "float", "double":
			if base != "" && !(base == "long" && p.cur().Text == "int") {
				goto done
			}
			if base != "long" {
				base = p.cur().Text
			}
			p.pos++
		case "long":
			if base == "" || base == "long" {
				base = "long" // long long collapses to long (i64)
				p.pos++
			} else if base == "int" {
				base = "long"
				p.pos++
			} else {
				goto done
			}
		case "const", "volatile":
			p.pos++
		default:
			goto done
		}
	}
done:
	_ = signed
	if base == "" {
		base = "int" // "unsigned" alone
	}
	var typ *Type
	switch base {
	case "char":
		if unsigned {
			typ = TUChar
		} else {
			typ = TChar
		}
	case "short":
		if unsigned {
			typ = TUShort
		} else {
			typ = TShort
		}
	case "int":
		if unsigned {
			typ = TUInt
		} else {
			typ = TInt
		}
	case "long":
		if unsigned {
			typ = TULong
		} else {
			typ = TLong
		}
	case "float":
		typ = TFloat
	case "double":
		typ = TDouble
	}
	return p.finishQuals(typ), isStatic, nil
}

// finishQuals consumes trailing const/volatile.
func (p *parser) finishQuals(t *Type) *Type {
	for p.acceptKw("const") || p.acceptKw("volatile") {
	}
	return t
}

// parseStructRef parses `Name`, `Name { ... }`, or `{ ... }` after
// struct/union.
func (p *parser) parseStructRef(isUnion bool) (*StructInfo, error) {
	name := ""
	if p.at(TokIdent) {
		name = p.next().Text
	}
	if !p.atPunct("{") {
		st, ok := p.structs[name]
		if !ok {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "unknown struct %q", name)
		}
		return st, nil
	}
	p.pos++ // {
	st := &StructInfo{Name: name, IsUnion: isUnion}
	for !p.atPunct("}") {
		base, _, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		for {
			ft, fname, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			st.Fields = append(st.Fields, Field{Name: fname, Type: ft})
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	p.pos++ // }
	if name != "" {
		p.structs[name] = st
	}
	return st, nil
}

// parseDeclarator parses pointer stars, a name, and array suffixes.
func (p *parser) parseDeclarator(base *Type) (*Type, string, error) {
	t := base
	for p.acceptPunct("*") {
		t = PtrTo(t)
		p.finishQuals(t)
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, "", err
	}
	// Array suffixes: read dimensions then wrap outside-in.
	var dims []int
	for p.acceptPunct("[") {
		if p.atPunct("]") {
			// Unsized: treat as pointer (parameter decay).
			p.pos++
			t = PtrTo(t)
			continue
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, "", err
		}
		n, ok := constIntFold(e)
		if !ok || n <= 0 {
			return nil, "", errf(nameTok.Line, nameTok.Col, "array dimension must be a positive constant")
		}
		dims = append(dims, int(n))
		if err := p.expectPunct("]"); err != nil {
			return nil, "", err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = ArrayOf(t, dims[i])
	}
	return t, nameTok.Text, nil
}

// constIntFold folds simple constant integer expressions at parse time
// (array dimensions built from #define arithmetic).
func constIntFold(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.V, true
	case *Unary:
		v, ok := constIntFold(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "-":
			return -v, true
		case "+":
			return v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *Binary:
		a, ok1 := constIntFold(x.X)
		b, ok2 := constIntFold(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case "%":
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case "<<":
			return a << uint(b&63), true
		case ">>":
			return a >> uint(b&63), true
		case "&":
			return a & b, true
		case "|":
			return a | b, true
		case "^":
			return a ^ b, true
		}
	case *CastExpr:
		return constIntFold(x.X)
	}
	return 0, false
}

func (p *parser) parseTopLevel(f *File) error {
	// Bare struct/union definition?
	if (p.atKw("struct") || p.atKw("union")) && p.toks[p.pos+1].Kind == TokIdent &&
		p.toks[p.pos+2].Kind == TokPunct && p.toks[p.pos+2].Text == "{" {
		isUnion := p.cur().Text == "union"
		p.pos++
		st, err := p.parseStructRef(isUnion)
		if err != nil {
			return err
		}
		f.Structs = append(f.Structs, st)
		// Optional declarators after the body: `struct S {...} g;`
		if !p.atPunct(";") {
			base := &Type{Kind: KStruct, S: st}
			for {
				vt, name, err := p.parseDeclarator(base)
				if err != nil {
					return err
				}
				f.Globals = append(f.Globals, &VarDecl{Name: name, Type: vt, IsGlobal: true})
				if !p.acceptPunct(",") {
					break
				}
			}
		}
		return p.expectPunct(";")
	}

	base, isStatic, err := p.parseBaseType()
	if err != nil {
		return err
	}
	line := p.cur().Line
	typ, name, err := p.parseDeclarator(base)
	if err != nil {
		return err
	}

	if p.atPunct("(") {
		return p.parseFuncRest(f, typ, name, isStatic, line)
	}

	// Global variable(s).
	for {
		vd := &VarDecl{Name: name, Type: typ, IsGlobal: true, Line: line}
		if p.acceptPunct("=") {
			init, err := p.parseInitializer()
			if err != nil {
				return err
			}
			vd.Init = init
		}
		f.Globals = append(f.Globals, vd)
		if !p.acceptPunct(",") {
			break
		}
		typ, name, err = p.parseDeclarator(base)
		if err != nil {
			return err
		}
	}
	return p.expectPunct(";")
}

func (p *parser) parseFuncRest(f *File, ret *Type, name string, isStatic bool, line int) error {
	p.pos++ // (
	fd := &FuncDecl{Name: name, Ret: ret, Line: line, Static: isStatic}
	if !p.atPunct(")") {
		if p.atKw("void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
			p.pos++ // bare void parameter list
		} else {
			for {
				base, _, err := p.parseBaseType()
				if err != nil {
					return err
				}
				pt, pname, err := p.parseDeclarator(base)
				if err != nil {
					return err
				}
				// Array parameters decay to pointers.
				if pt.Kind == KArray {
					pt = PtrTo(pt.Elem)
				}
				fd.Params = append(fd.Params, &VarDecl{Name: pname, Type: pt, Line: line})
				if !p.acceptPunct(",") {
					break
				}
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if p.acceptPunct(";") {
		// Prototype only: record for checking but without a body.
		fd.Body = nil
		f.Funcs = append(f.Funcs, fd)
		return nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fd.Body = body
	f.Funcs = append(f.Funcs, fd)
	return nil
}

func (p *parser) parseInitializer() (Expr, error) {
	if p.atPunct("{") {
		p.pos++
		il := &InitList{}
		for !p.atPunct("}") {
			item, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			il.Items = append(il.Items, item)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return il, nil
	}
	return p.parseAssignExpr()
}

// ---- Statements ----

func (p *parser) parseBlock() (*BlockStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.atPunct("}") {
		if p.at(TokEOF) {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atPunct("{"):
		return p.parseBlock()
	case p.atPunct(";"):
		p.pos++
		return &BlockStmt{}, nil
	case p.atKw("if"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.acceptKw("else") {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil
	case p.atKw("while"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.atKw("do"):
		p.pos++
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if !p.acceptKw("while") {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "expected while after do body")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, DoWhile: true}, nil
	case p.atKw("for"):
		return p.parseFor()
	case p.atKw("switch"):
		return p.parseSwitch()
	case p.atKw("break"):
		p.pos++
		return &BreakStmt{}, p.expectPunct(";")
	case p.atKw("continue"):
		p.pos++
		return &ContinueStmt{}, p.expectPunct(";")
	case p.atKw("return"):
		p.pos++
		if p.acceptPunct(";") {
			return &ReturnStmt{}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x}, p.expectPunct(";")
	case p.atKw("try"):
		p.pos++
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		if !p.acceptKw("catch") {
			return nil, errf(t.Line, t.Col, "try without catch")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		// Skip the exception declarator: anything up to the closing paren.
		depth := 1
		for depth > 0 {
			if p.at(TokEOF) {
				return nil, errf(t.Line, t.Col, "unterminated catch clause")
			}
			if p.atPunct("(") {
				depth++
			}
			if p.atPunct(")") {
				depth--
			}
			p.pos++
		}
		catch, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &TryStmt{Body: body, Catch: catch}, nil
	case p.atKw("throw"):
		p.pos++
		var x Expr
		if !p.atPunct(";") {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		return &ThrowStmt{X: x}, p.expectPunct(";")
	case p.atTypeStart():
		return p.parseDeclStmt()
	}
	// Expression statement.
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, p.expectPunct(";")
}

func (p *parser) parseDeclStmt() (Stmt, error) {
	base, _, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{}
	for {
		line := p.cur().Line
		typ, name, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		vd := &VarDecl{Name: name, Type: typ, Line: line}
		if p.acceptPunct("=") {
			init, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			vd.Init = init
		}
		ds.Vars = append(ds.Vars, vd)
		if !p.acceptPunct(",") {
			break
		}
	}
	return ds, p.expectPunct(";")
}

func (p *parser) parseFor() (Stmt, error) {
	p.pos++ // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fs := &ForStmt{}
	if !p.atPunct(";") {
		if p.atTypeStart() {
			s, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			fs.Init = s
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fs.Init = &ExprStmt{X: x}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.pos++
	}
	if !p.atPunct(";") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = c
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	p.pos++ // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{Tag: tag}
	var cur *SwitchCase
	for !p.atPunct("}") {
		switch {
		case p.atKw("case"):
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			v, ok := constIntFold(e)
			if !ok {
				t := p.cur()
				return nil, errf(t.Line, t.Col, "case value must be constant")
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			// Adjacent labels share a body.
			if cur != nil && len(cur.Body) == 0 && !cur.IsDefault {
				cur.Vals = append(cur.Vals, v)
			} else {
				cur = &SwitchCase{Vals: []int64{v}}
				sw.Cases = append(sw.Cases, cur)
			}
		case p.atKw("default"):
			p.pos++
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			cur = &SwitchCase{IsDefault: true}
			sw.Cases = append(sw.Cases, cur)
		default:
			if cur == nil {
				t := p.cur()
				return nil, errf(t.Line, t.Col, "statement before first case label")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			cur.Body = append(cur.Body, s)
		}
	}
	p.pos++ // }
	return sw, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) {
	e, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	// Comma operator: evaluate left, yield right. Represent as a Binary ",".
	for p.atPunct(",") {
		// Only inside parens/for-posts; caller grammar contexts that use
		// comma as a separator call parseAssignExpr directly.
		p.pos++
		r, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		e = &Binary{Op: ",", X: e, Y: r}
	}
	return e, nil
}

func (p *parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokPunct {
		op := p.cur().Text
		switch op {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
			p.pos++
			rhs, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{Op: op, LHS: lhs, RHS: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *parser) parseCond() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("?") {
		t, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		f, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		return &Cond{C: c, T: t, F: f}, nil
	}
	return c, nil
}

var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "+", "!", "~", "*", "&":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x}, nil
		case "++", "--":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x}, nil
		case "(":
			// Cast or parenthesized expression.
			if p.isCastAhead() {
				p.pos++ // (
				base, _, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				to := base
				for p.acceptPunct("*") {
					to = PtrTo(to)
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &CastExpr{To: to, X: x}, nil
			}
		}
	}
	if t.Kind == TokKeyword && t.Text == "sizeof" {
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.atTypeStart() {
			base, _, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			to := base
			for p.acceptPunct("*") {
				to = PtrTo(to)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &SizeofExpr{OfType: to}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &SizeofExpr{X: x}, nil
	}
	return p.parsePostfix()
}

// isCastAhead looks past "(" for a type keyword followed eventually by ")".
func (p *parser) isCastAhead() bool {
	if p.toks[p.pos+1].Kind != TokKeyword {
		return false
	}
	switch p.toks[p.pos+1].Text {
	case "void", "char", "short", "int", "long", "float", "double",
		"unsigned", "signed", "struct", "union", "const":
		return true
	}
	return false
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return e, nil
		}
		switch t.Text {
		case "[":
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &Index{X: e, I: idx}
		case ".":
			p.pos++
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			e = &Member{X: e, Name: name.Text}
		case "->":
			p.pos++
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			e = &Member{X: e, Name: name.Text, Arrow: true}
		case "++", "--":
			p.pos++
			e = &Unary{Op: t.Text, X: e, Postfix: true}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit, TokCharLit:
		p.pos++
		return &IntLit{V: t.IntVal}, nil
	case TokFloatLit:
		p.pos++
		return &FloatLit{V: t.FloatVal}, nil
	case TokStrLit:
		p.pos++
		return &StrLit{S: t.Text}, nil
	case TokIdent:
		p.pos++
		if p.atPunct("(") {
			p.pos++
			c := &Call{Name: t.Text, Line: t.Line}
			for !p.atPunct(")") {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return c, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case TokPunct:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	}
	return nil, errf(t.Line, t.Col, "unexpected token %s in expression", t)
}

// Dump renders an expression for tests and debugging.
func Dump(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", x.V)
	case *FloatLit:
		return fmt.Sprintf("%g", x.V)
	case *StrLit:
		return fmt.Sprintf("%q", x.S)
	case *Ident:
		return x.Name
	case *Unary:
		if x.Postfix {
			return "(" + Dump(x.X) + x.Op + ")"
		}
		return "(" + x.Op + Dump(x.X) + ")"
	case *Binary:
		return "(" + Dump(x.X) + x.Op + Dump(x.Y) + ")"
	case *Assign:
		return "(" + Dump(x.LHS) + x.Op + Dump(x.RHS) + ")"
	case *Cond:
		return "(" + Dump(x.C) + "?" + Dump(x.T) + ":" + Dump(x.F) + ")"
	case *Call:
		s := x.Name + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ","
			}
			s += Dump(a)
		}
		return s + ")"
	case *Index:
		return Dump(x.X) + "[" + Dump(x.I) + "]"
	case *Member:
		sep := "."
		if x.Arrow {
			sep = "->"
		}
		return Dump(x.X) + sep + x.Name
	case *CastExpr:
		return "((" + x.To.String() + ")" + Dump(x.X) + ")"
	case *SizeofExpr:
		if x.OfType != nil {
			return "sizeof(" + x.OfType.String() + ")"
		}
		return "sizeof(" + Dump(x.X) + ")"
	case *InitList:
		s := "{"
		for i, it := range x.Items {
			if i > 0 {
				s += ","
			}
			s += Dump(it)
		}
		return s + "}"
	}
	return "?"
}
