package minic

// TransformReport summarizes what the §3.1 source transformation rewrote.
type TransformReport struct {
	ExceptionsRemoved int
	ThrowsRemoved     int
	UnionsConverted   int
}

// Transform applies the paper's §3.1 source code transformations so that
// programs using constructs unsupported by the Cheerp-style target become
// compilable:
//
//   - try/catch/throw: each try statement gets a fresh error flag; throws
//     become flag assignments, statements following a throw in the same
//     block are guarded by the flag, and the catch body runs under
//     `if (flag)` after the try body (paper Fig. 3(a)).
//   - union: converted to the struct-plus-cast pattern (paper Fig. 3(b)).
//     All members share offset zero and the aggregate takes the size of its
//     largest member, which is exactly the layout the paper's explicit
//     struct/cast rewrite produces.
//
// Transform must run before Check; the checker rejects untransformed
// extensions just as Cheerp rejects the original constructs.
func Transform(f *File) *TransformReport {
	t := &transformer{}
	for _, st := range f.Structs {
		t.transformStruct(st)
	}
	// Struct types can also be declared inline in globals/locals; scan
	// reachable types as well.
	for _, g := range f.Globals {
		t.scanType(g.Type)
	}
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		fn.Body = t.block(fn.Body)
	}
	return &t.report
}

type transformer struct {
	report  TransformReport
	counter int
	seen    map[*StructInfo]bool
}

func (t *transformer) transformStruct(s *StructInfo) {
	if t.seen == nil {
		t.seen = map[*StructInfo]bool{}
	}
	if t.seen[s] {
		return
	}
	t.seen[s] = true
	for i := range s.Fields {
		t.scanType(s.Fields[i].Type)
	}
	if !s.IsUnion {
		return
	}
	// The struct+cast rewrite: overlap every member at offset 0 and size
	// the aggregate by its widest member.
	s.IsUnion = false
	maxSize, maxAlign := 0, 1
	for i := range s.Fields {
		s.Fields[i].Offset = 0
		if sz := s.Fields[i].Type.Size(); sz > maxSize {
			maxSize = sz
		}
		if a := s.Fields[i].Type.Align(); a > maxAlign {
			maxAlign = a
		}
	}
	if maxSize == 0 {
		maxSize = 1
	}
	s.size = (maxSize + maxAlign - 1) / maxAlign * maxAlign
	s.align = maxAlign
	t.report.UnionsConverted++
}

func (t *transformer) scanType(ty *Type) {
	switch ty.Kind {
	case KPtr, KArray:
		t.scanType(ty.Elem)
	case KStruct:
		t.transformStruct(ty.S)
	}
}

func (t *transformer) block(b *BlockStmt) *BlockStmt {
	out := &BlockStmt{}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, t.stmt(s))
	}
	return out
}

func (t *transformer) stmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *BlockStmt:
		return t.block(st)
	case *IfStmt:
		st.Then = t.stmt(st.Then)
		if st.Else != nil {
			st.Else = t.stmt(st.Else)
		}
		return st
	case *ForStmt:
		st.Body = t.stmt(st.Body)
		return st
	case *WhileStmt:
		st.Body = t.stmt(st.Body)
		return st
	case *SwitchStmt:
		for _, cs := range st.Cases {
			for i, sub := range cs.Body {
				cs.Body[i] = t.stmt(sub)
			}
		}
		return st
	case *TryStmt:
		return t.rewriteTry(st)
	case *ThrowStmt:
		// A throw outside any try aborts; the transformed program records
		// the error in a flag that nothing reads (paper-faithful: the
		// benchmark's throws are all within try bodies).
		t.report.ThrowsRemoved++
		return &BlockStmt{}
	}
	return s
}

// rewriteTry implements the Fig. 3(a) rewrite.
func (t *transformer) rewriteTry(ts *TryStmt) Stmt {
	t.report.ExceptionsRemoved++
	t.counter++
	flag := &VarDecl{
		Name: transformFlagName(t.counter),
		Type: TInt,
		Init: &IntLit{V: 0},
	}
	flagRef := func() *Ident { return &Ident{Name: flag.Name, Ref: flag} }

	body := t.rewriteThrows(t.block(ts.Body), flag)
	catch := t.stmt(ts.Catch)

	out := &BlockStmt{}
	out.Stmts = append(out.Stmts, &DeclStmt{Vars: []*VarDecl{flag}})
	out.Stmts = append(out.Stmts, body)
	out.Stmts = append(out.Stmts, &IfStmt{Cond: flagRef(), Then: catch})
	return out
}

// rewriteThrows replaces each throw in the block with `flag = 1` and guards
// the statements that follow it (in the same block) with `if (!flag)`, which
// preserves the abort-the-rest semantics for straight-line code.
func (t *transformer) rewriteThrows(b *BlockStmt, flag *VarDecl) *BlockStmt {
	out := &BlockStmt{}
	for i, s := range b.Stmts {
		switch st := s.(type) {
		case *ThrowStmt:
			t.report.ThrowsRemoved++
			set := &Assign{Op: "=", LHS: &Ident{Name: flag.Name, Ref: flag}, RHS: &IntLit{V: 1}}
			out.Stmts = append(out.Stmts, &ExprStmt{X: set})
			if i+1 < len(b.Stmts) {
				rest := t.rewriteThrows(&BlockStmt{Stmts: b.Stmts[i+1:]}, flag)
				guard := &IfStmt{
					Cond: &Unary{Op: "!", X: &Ident{Name: flag.Name, Ref: flag}},
					Then: rest,
				}
				out.Stmts = append(out.Stmts, guard)
			}
			return out
		case *BlockStmt:
			out.Stmts = append(out.Stmts, t.rewriteThrows(st, flag))
		case *IfStmt:
			st.Then = t.rewriteThrowsIn(st.Then, flag)
			if st.Else != nil {
				st.Else = t.rewriteThrowsIn(st.Else, flag)
			}
			out.Stmts = append(out.Stmts, st)
		case *ForStmt:
			st.Body = t.rewriteThrowsIn(st.Body, flag)
			out.Stmts = append(out.Stmts, st)
		case *WhileStmt:
			st.Body = t.rewriteThrowsIn(st.Body, flag)
			out.Stmts = append(out.Stmts, st)
		default:
			out.Stmts = append(out.Stmts, t.stmt(s))
		}
	}
	return out
}

func (t *transformer) rewriteThrowsIn(s Stmt, flag *VarDecl) Stmt {
	switch st := s.(type) {
	case *BlockStmt:
		return t.rewriteThrows(st, flag)
	case *ThrowStmt:
		t.report.ThrowsRemoved++
		return &ExprStmt{X: &Assign{
			Op: "=", LHS: &Ident{Name: flag.Name, Ref: flag}, RHS: &IntLit{V: 1},
		}}
	default:
		return t.stmt(s)
	}
}

func transformFlagName(n int) string {
	return "__exc_flag" + string(rune('0'+n%10)) + string(rune('0'+(n/10)%10))
}
