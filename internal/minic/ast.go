package minic

// Type kinds. Signedness is folded into the kind.
type Kind uint8

// Kinds.
const (
	KVoid Kind = iota
	KChar
	KUChar
	KShort
	KUShort
	KInt
	KUInt
	KLong
	KULong
	KFloat
	KDouble
	KPtr
	KArray
	KStruct
)

// Type describes a minic type. Types are interned only loosely; compare
// with Equal.
type Type struct {
	Kind Kind
	Elem *Type       // Ptr, Array
	Len  int         // Array
	S    *StructInfo // Struct
}

// StructInfo holds the layout of a struct (or a not-yet-transformed union).
type StructInfo struct {
	Name    string
	Fields  []Field
	IsUnion bool
	size    int
	align   int
}

// Field is one struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int
}

// Basic type singletons.
var (
	TVoid   = &Type{Kind: KVoid}
	TChar   = &Type{Kind: KChar}
	TUChar  = &Type{Kind: KUChar}
	TShort  = &Type{Kind: KShort}
	TUShort = &Type{Kind: KUShort}
	TInt    = &Type{Kind: KInt}
	TUInt   = &Type{Kind: KUInt}
	TLong   = &Type{Kind: KLong}
	TULong  = &Type{Kind: KULong}
	TFloat  = &Type{Kind: KFloat}
	TDouble = &Type{Kind: KDouble}
)

// PtrTo returns a pointer type to elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: KPtr, Elem: elem} }

// ArrayOf returns an array type.
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: KArray, Elem: elem, Len: n} }

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case KChar, KUChar, KShort, KUShort, KInt, KUInt, KLong, KULong:
		return true
	}
	return false
}

// IsFloat reports whether t is float or double.
func (t *Type) IsFloat() bool { return t.Kind == KFloat || t.Kind == KDouble }

// IsArith reports whether t is numeric.
func (t *Type) IsArith() bool { return t.IsInteger() || t.IsFloat() }

// IsUnsigned reports whether t is an unsigned integer type.
func (t *Type) IsUnsigned() bool {
	switch t.Kind {
	case KUChar, KUShort, KUInt, KULong, KPtr:
		return true
	}
	return false
}

// Is64 reports whether t occupies 64 bits.
func (t *Type) Is64() bool {
	return t.Kind == KLong || t.Kind == KULong || t.Kind == KDouble
}

// Size returns sizeof(t) under the wasm32 layout (pointers are 4 bytes).
func (t *Type) Size() int {
	switch t.Kind {
	case KVoid:
		return 0
	case KChar, KUChar:
		return 1
	case KShort, KUShort:
		return 2
	case KInt, KUInt, KFloat, KPtr:
		return 4
	case KLong, KULong, KDouble:
		return 8
	case KArray:
		return t.Len * t.Elem.Size()
	case KStruct:
		return t.S.SizeAlign()
	}
	return 0
}

// Align returns the alignment of t.
func (t *Type) Align() int {
	switch t.Kind {
	case KArray:
		return t.Elem.Align()
	case KStruct:
		t.S.SizeAlign()
		return t.S.align
	default:
		s := t.Size()
		if s == 0 {
			return 1
		}
		return s
	}
}

// SizeAlign lays out the struct (idempotent) and returns its size.
func (s *StructInfo) SizeAlign() int {
	if s.size > 0 {
		return s.size
	}
	off, maxAlign := 0, 1
	for i := range s.Fields {
		f := &s.Fields[i]
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		if s.IsUnion {
			f.Offset = 0
			if sz := f.Type.Size(); sz > off {
				off = sz
			}
			continue
		}
		off = (off + a - 1) / a * a
		f.Offset = off
		off += f.Type.Size()
	}
	off = (off + maxAlign - 1) / maxAlign * maxAlign
	if off == 0 {
		off = 1
	}
	s.size = off
	s.align = maxAlign
	return off
}

// FieldByName looks up a member.
func (s *StructInfo) FieldByName(name string) (*Field, bool) {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i], true
		}
	}
	return nil, false
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KPtr:
		return t.Elem.Equal(o.Elem)
	case KArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	case KStruct:
		return t.S == o.S
	}
	return true
}

// String renders the type for diagnostics.
func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KChar:
		return "char"
	case KUChar:
		return "unsigned char"
	case KShort:
		return "short"
	case KUShort:
		return "unsigned short"
	case KInt:
		return "int"
	case KUInt:
		return "unsigned int"
	case KLong:
		return "long"
	case KULong:
		return "unsigned long"
	case KFloat:
		return "float"
	case KDouble:
		return "double"
	case KPtr:
		return t.Elem.String() + "*"
	case KArray:
		return t.Elem.String() + "[]"
	case KStruct:
		if t.S.IsUnion {
			return "union " + t.S.Name
		}
		return "struct " + t.S.Name
	}
	return "?"
}

// ---- Declarations ----

// File is a parsed translation unit.
type File struct {
	Structs []*StructInfo
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*VarDecl
	Body   *BlockStmt
	Line   int
	// Inline hints used by the optimizer.
	Static bool
}

// VarDecl declares a global, parameter, or local variable.
type VarDecl struct {
	Name     string
	Type     *Type
	Init     Expr // scalar initializer or *InitList; nil if none
	IsGlobal bool
	IsConst  bool
	Line     int
	// AddrTaken is set by Check when the variable's address escapes (&x, or
	// the variable is an aggregate); such variables live in linear memory.
	AddrTaken bool
	// IsParam marks function parameters.
	IsParam bool
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// BlockStmt is a `{ ... }` sequence.
type BlockStmt struct{ Stmts []Stmt }

// DeclStmt declares local variables.
type DeclStmt struct{ Vars []*VarDecl }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct{ X Expr }

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a C for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// WhileStmt is while or do-while.
type WhileStmt struct {
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// SwitchStmt is a switch with constant cases.
type SwitchStmt struct {
	Tag   Expr
	Cases []*SwitchCase
}

// SwitchCase is one case (or default) arm; fallthrough is preserved.
type SwitchCase struct {
	Vals      []int64 // constant values; empty for default
	IsDefault bool
	Body      []Stmt
}

// BreakStmt breaks the nearest loop or switch.
type BreakStmt struct{}

// ContinueStmt continues the nearest loop.
type ContinueStmt struct{}

// ReturnStmt returns from the function.
type ReturnStmt struct{ X Expr } // X may be nil

// TryStmt is the C++-style construct accepted only as transformation input
// (§3.1 of the paper). The checker rejects it; Transform rewrites it.
type TryStmt struct {
	Body  *BlockStmt
	Catch *BlockStmt
}

// ThrowStmt is likewise transformation input only.
type ThrowStmt struct{ X Expr }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*SwitchStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*TryStmt) stmtNode()      {}
func (*ThrowStmt) stmtNode()    {}

// ---- Expressions ----

// Expr is implemented by all expression nodes. After Check, every
// expression carries its type.
type Expr interface {
	exprNode()
	Type() *Type
	setType(*Type)
}

type exprBase struct{ typ *Type }

func (b *exprBase) exprNode()       {}
func (b *exprBase) Type() *Type     { return b.typ }
func (b *exprBase) setType(t *Type) { b.typ = t }

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	V int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	V float64
}

// StrLit is a string literal (decays to char*).
type StrLit struct {
	exprBase
	S string
}

// Ident references a variable; Ref is resolved by Check.
type Ident struct {
	exprBase
	Name string
	Ref  *VarDecl
	Line int
}

// Unary is a prefix or postfix unary operation: one of
// "-", "+", "!", "~", "*", "&", "++", "--".
type Unary struct {
	exprBase
	Op      string
	X       Expr
	Postfix bool
}

// Binary is a binary operation (arith, relational, logical, bitwise).
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Assign is "=" or a compound assignment.
type Assign struct {
	exprBase
	Op       string // "=", "+=", ...
	LHS, RHS Expr
}

// Cond is the ternary operator.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Call is a direct call to a named function or builtin.
type Call struct {
	exprBase
	Name string
	Args []Expr
	Line int
	// Builtin is set by Check for recognized library functions.
	Builtin string
	Ref     *FuncDecl
}

// Index is array/pointer subscripting.
type Index struct {
	exprBase
	X, I Expr
}

// Member is struct member access (value or pointer form).
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	F     *Field // resolved by Check
}

// CastExpr is an explicit cast.
type CastExpr struct {
	exprBase
	To *Type
	X  Expr
}

// SizeofExpr is sizeof(type) or sizeof(expr).
type SizeofExpr struct {
	exprBase
	OfType *Type // one of OfType/X set
	X      Expr
}

// InitList is a braced initializer.
type InitList struct {
	exprBase
	Items []Expr
}
