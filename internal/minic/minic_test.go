package minic

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string, defs map[string]string) *File {
	t.Helper()
	f, err := ParseSource(src, defs)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func mustCheck(t *testing.T, src string, defs map[string]string) *File {
	t.Helper()
	f := mustParse(t, src, defs)
	if err := Check(f, CheckOptions{}); err != nil {
		t.Fatalf("check: %v", err)
	}
	return f
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int x = 0x1F + 042 - 'a' * 3.5e2; // comment
/* block */ "str\n"`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "int" {
		t.Errorf("first token: %v", toks[0])
	}
	// 0x1F = 31, 042 octal = 34, 'a' = 97
	if toks[3].IntVal != 31 {
		t.Errorf("hex literal: %d", toks[3].IntVal)
	}
	if toks[5].IntVal != 34 {
		t.Errorf("octal literal: %d", toks[5].IntVal)
	}
	if toks[7].IntVal != 97 {
		t.Errorf("char literal: %d", toks[7].IntVal)
	}
	if toks[9].FloatVal != 350 {
		t.Errorf("float literal: %v", toks[9].FloatVal)
	}
	last := toks[len(toks)-2]
	if last.Kind != TokStrLit || last.Text != "str\n" {
		t.Errorf("string literal: %v", last)
	}
	_ = kinds
	_ = texts
}

func TestLexSuffixes(t *testing.T) {
	toks, err := Lex("10UL 3ll 2.5f 7u")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].IntVal != 10 || toks[1].IntVal != 3 || toks[3].IntVal != 7 {
		t.Errorf("suffixed ints: %v %v %v", toks[0], toks[1], toks[3])
	}
	if !toks[2].IsFloat || toks[2].FloatVal != 2.5 {
		t.Errorf("2.5f: %v", toks[2])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"/* unterminated", `"open`, "'x", "@"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("expected lex error for %q", src)
		}
	}
}

func TestPreprocessorDefines(t *testing.T) {
	src := `
#define N 10
#define M (N * 2)
int a[M];
`
	f := mustCheck(t, src, nil)
	if len(f.Globals) != 1 || f.Globals[0].Type.Len != 20 {
		t.Fatalf("expected int a[20], got %v", f.Globals[0].Type)
	}
}

func TestPreprocessorCmdlineWins(t *testing.T) {
	src := `
#define N 10
int a[N];
`
	f := mustCheck(t, src, map[string]string{"N": "7"})
	if f.Globals[0].Type.Len != 7 {
		t.Fatalf("-D should win: got %d", f.Globals[0].Type.Len)
	}
}

func TestPreprocessorConditionals(t *testing.T) {
	src := `
#ifdef BIG
int a[100];
#else
int a[10];
#endif
#ifndef BIG
int b;
#endif
`
	f := mustCheck(t, src, nil)
	if f.Globals[0].Type.Len != 10 || len(f.Globals) != 2 {
		t.Fatalf("conditional compilation wrong: %+v", f.Globals)
	}
	f2 := mustCheck(t, src, map[string]string{"BIG": "1"})
	if f2.Globals[0].Type.Len != 100 || len(f2.Globals) != 1 {
		t.Fatalf("BIG branch wrong: %+v", f2.Globals)
	}
}

func TestPreprocessorRecursionGuard(t *testing.T) {
	if _, err := Preprocess("#define A A\nint x = A;", nil); err == nil {
		t.Fatal("expected recursion error")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	f := mustParse(t, "int x = 1 + 2 * 3 << 1 & 7;", nil)
	got := Dump(f.Globals[0].Init)
	want := "(((1+(2*3))<<1)&7)"
	if got != want {
		t.Errorf("precedence: got %s, want %s", got, want)
	}
}

func TestParseDeclarators(t *testing.T) {
	f := mustParse(t, `
double A[10][20];
int *p;
char **pp;
struct point { int x; int y; };
struct point pts[4];
`, nil)
	if f.Globals[0].Type.Kind != KArray || f.Globals[0].Type.Len != 10 ||
		f.Globals[0].Type.Elem.Len != 20 {
		t.Errorf("2D array: %v", f.Globals[0].Type)
	}
	if f.Globals[1].Type.Kind != KPtr {
		t.Errorf("pointer: %v", f.Globals[1].Type)
	}
	if f.Globals[2].Type.Kind != KPtr || f.Globals[2].Type.Elem.Kind != KPtr {
		t.Errorf("double pointer: %v", f.Globals[2].Type)
	}
	if f.Globals[3].Type.Kind != KArray || f.Globals[3].Type.Elem.Kind != KStruct {
		t.Errorf("struct array: %v", f.Globals[3].Type)
	}
}

func TestStructLayout(t *testing.T) {
	f := mustParse(t, `struct s { char c; double d; int i; };`, nil)
	s := f.Structs[0]
	if s.SizeAlign() != 24 {
		t.Errorf("struct size = %d, want 24", s.SizeAlign())
	}
	d, _ := s.FieldByName("d")
	if d.Offset != 8 {
		t.Errorf("d offset = %d, want 8", d.Offset)
	}
	i, _ := s.FieldByName("i")
	if i.Offset != 16 {
		t.Errorf("i offset = %d, want 16", i.Offset)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    if (i % 2 == 0) continue;
    s += i;
  }
  while (s > 100) s -= 10;
  do { s++; } while (s < 0);
  switch (n) {
    case 0:
    case 1: s = 1; break;
    case 2: s = 2; break;
    default: s = 3;
  }
  return s;
}
`
	mustCheck(t, src, nil)
}

func TestCheckerTypesAndConversions(t *testing.T) {
	src := `
double g;
int f(int a, double b) {
  long l = a;       // int -> long
  double d = a + b; // usual arithmetic conversion
  g = d * l;
  return (int)g;
}
`
	f := mustCheck(t, src, nil)
	fn := f.Funcs[0]
	// a + b must have been converted to double.
	ds := fn.Body.Stmts[1].(*DeclStmt)
	if ds.Vars[0].Init.Type().Kind != KDouble {
		t.Errorf("a+b type: %v", ds.Vars[0].Init.Type())
	}
}

func TestCheckerErrors(t *testing.T) {
	cases := map[string]string{
		"undefined var":     "int f() { return x; }",
		"undefined func":    "int f() { return g(); }",
		"bad arg count":     "int g(int a) { return a; } int f() { return g(); }",
		"assign to rvalue":  "int f() { 3 = 4; return 0; }",
		"break outside":     "int f() { break; return 0; }",
		"struct arithmetic": "struct s { int x; }; struct s v; int f() { return v + 1; }",
		"void return value": "void f() { return 3; }",
		"index non-array":   "int f(int x) { return x[0]; }",
		"member non-struct": "int f(int x) { return x.y; }",
		"deref non-pointer": "int f(int x) { return *x; }",
	}
	for name, src := range cases {
		f, err := ParseSource(src, nil)
		if err != nil {
			continue // parse error also acceptable for some cases
		}
		if err := Check(f, CheckOptions{}); err == nil {
			t.Errorf("%s: expected check error", name)
		}
	}
}

func TestCheckerRejectsUntransformedExtensions(t *testing.T) {
	try := `int f() { try { throw 1; } catch (int e) { } return 0; }`
	f := mustParse(t, try, nil)
	if err := Check(f, CheckOptions{}); err == nil || !strings.Contains(err.Error(), "Transform") {
		t.Errorf("try/catch should be rejected pre-transform: %v", err)
	}
	union := `union u { int i; double d; }; union u x;`
	f2 := mustParse(t, union, nil)
	if err := Check(f2, CheckOptions{}); err == nil || !strings.Contains(err.Error(), "Transform") {
		t.Errorf("union should be rejected pre-transform: %v", err)
	}
}

func TestTransformExceptions(t *testing.T) {
	src := `
int g;
int f(int x) {
  try {
    if (x < 0) throw 1;
    g = x;
  } catch (int e) {
    g = -1;
  }
  return g;
}
`
	f := mustParse(t, src, nil)
	rep := Transform(f)
	if rep.ExceptionsRemoved != 1 || rep.ThrowsRemoved != 1 {
		t.Fatalf("report: %+v", rep)
	}
	// After transformation, the file must pass the strict check.
	if err := Check(f, CheckOptions{}); err != nil {
		t.Fatalf("transformed file should check: %v", err)
	}
}

func TestTransformUnion(t *testing.T) {
	src := `
union bits { double d; long ll; };
union bits u;
int f() { u.d = 1.5; return (int)(u.ll >> 62); }
`
	f := mustParse(t, src, nil)
	rep := Transform(f)
	if rep.UnionsConverted != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if err := Check(f, CheckOptions{}); err != nil {
		t.Fatalf("transformed union should check: %v", err)
	}
	s := f.Structs[0]
	if s.IsUnion {
		t.Error("union flag should be cleared")
	}
	if s.SizeAlign() != 8 {
		t.Errorf("overlapped size = %d, want 8", s.SizeAlign())
	}
	for _, fl := range s.Fields {
		if fl.Offset != 0 {
			t.Errorf("field %s offset = %d, want 0", fl.Name, fl.Offset)
		}
	}
}

func TestBuiltinRecognition(t *testing.T) {
	src := `
double f(double x) {
  print_f(x);
  return sqrt(x) + pow(x, 2.0);
}
`
	f := mustCheck(t, src, nil)
	var calls []*Call
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Call:
			calls = append(calls, x)
			for _, a := range x.Args {
				walk(a)
			}
		case *Binary:
			walk(x.X)
			walk(x.Y)
		}
	}
	for _, s := range f.Funcs[0].Body.Stmts {
		switch st := s.(type) {
		case *ExprStmt:
			walk(st.X)
		case *ReturnStmt:
			walk(st.X)
		}
	}
	if len(calls) != 3 {
		t.Fatalf("expected 3 calls, got %d", len(calls))
	}
	for _, c := range calls {
		if c.Builtin == "" {
			t.Errorf("call %s not recognized as builtin", c.Name)
		}
	}
}

func TestPointerArithmeticTyping(t *testing.T) {
	src := `
int f(int *p, int n) {
  int *q = p + n;
  return q - p;
}
`
	mustCheck(t, src, nil)
}

func TestSizeof(t *testing.T) {
	src := `
struct s { int a; double b; };
int szs() { return sizeof(struct s); }
int szd() { return sizeof(double); }
`
	mustCheck(t, src, nil)
}

func TestGlobalInitializers(t *testing.T) {
	src := `
int a = 5;
double b[3] = {1.0, 2.0, 3.0};
int m[2][2] = {{1, 2}, {3, 4}};
struct p { int x; int y; };
struct p pt = {10, 20};
`
	f := mustCheck(t, src, nil)
	if len(f.Globals) != 4 {
		t.Fatalf("globals: %d", len(f.Globals))
	}
	il, ok := f.Globals[2].Init.(*InitList)
	if !ok || len(il.Items) != 2 {
		t.Fatalf("nested init list: %v", f.Globals[2].Init)
	}
}

func TestAddrTakenAnalysis(t *testing.T) {
	src := `
int f() {
  int x = 1;
  int y = 2;
  int *p = &x;
  int arr[4];
  arr[0] = y;
  return *p + arr[0];
}
`
	f := mustCheck(t, src, nil)
	var get func(name string) *VarDecl
	decls := map[string]*VarDecl{}
	var collect func(s Stmt)
	collect = func(s Stmt) {
		switch st := s.(type) {
		case *BlockStmt:
			for _, sub := range st.Stmts {
				collect(sub)
			}
		case *DeclStmt:
			for _, v := range st.Vars {
				decls[v.Name] = v
			}
		}
	}
	collect(f.Funcs[0].Body)
	get = func(name string) *VarDecl { return decls[name] }
	if !get("x").AddrTaken {
		t.Error("x should be address-taken")
	}
	if get("y").AddrTaken {
		t.Error("y should not be address-taken")
	}
	if !get("arr").AddrTaken {
		t.Error("arrays are always memory-resident")
	}
}
