package minic

import "fmt"

// Builtin signatures. Builtins model the library surface the study's
// benchmarks need: the output channel (print_*), libm functions (provided
// by the host environment, as Math.* is in browsers), and the allocator
// entry points which the compiler links against its minic runtime.
type builtinSig struct {
	params []*Type
	ret    *Type
}

var builtins = map[string]builtinSig{
	"print_i": {[]*Type{TLong}, TVoid},
	"print_f": {[]*Type{TDouble}, TVoid},
	"print_s": {[]*Type{PtrTo(TChar)}, TVoid},
	"sqrt":    {[]*Type{TDouble}, TDouble},
	"fabs":    {[]*Type{TDouble}, TDouble},
	"sin":     {[]*Type{TDouble}, TDouble},
	"cos":     {[]*Type{TDouble}, TDouble},
	"exp":     {[]*Type{TDouble}, TDouble},
	"log":     {[]*Type{TDouble}, TDouble},
	"pow":     {[]*Type{TDouble, TDouble}, TDouble},
	"floor":   {[]*Type{TDouble}, TDouble},
	"ceil":    {[]*Type{TDouble}, TDouble},
	"fmod":    {[]*Type{TDouble, TDouble}, TDouble},
	"abs":     {[]*Type{TInt}, TInt},
	"malloc":  {[]*Type{TUInt}, PtrTo(TVoid)},
	// Compiler intrinsics exposed to the minic runtime library (the
	// allocator is written in minic and linked by the driver, like
	// Cheerp's own runtime).
	"__builtin_memsize":   {nil, TUInt},
	"__builtin_memgrow":   {[]*Type{TInt}, TInt},
	"__builtin_heapbase":  {nil, TUInt},
	"__builtin_heaplimit": {nil, TUInt},
	"__builtin_trap":      {nil, TVoid},
	"free":                {[]*Type{PtrTo(TVoid)}, TVoid},
	"memset":              {[]*Type{PtrTo(TVoid), TInt, TUInt}, PtrTo(TVoid)},
	"memcpy":              {[]*Type{PtrTo(TVoid), PtrTo(TVoid), TUInt}, PtrTo(TVoid)},
}

// CheckOptions controls frontend strictness.
type CheckOptions struct {
	// AllowExtensions permits try/catch/throw and union to survive checking
	// (used by tests that inspect pre-transformation ASTs). The default
	// mirrors Cheerp: these constructs are compile errors until the §3.1
	// source transformation has removed them.
	AllowExtensions bool
}

// Check resolves names, computes types, applies implicit conversions, and
// enforces the subset rules. It mutates the AST in place.
func Check(f *File, opts CheckOptions) error {
	c := &checker{
		opts:    opts,
		funcs:   map[string]*FuncDecl{},
		globals: map[string]*VarDecl{},
	}
	for _, fn := range f.Funcs {
		if prev, ok := c.funcs[fn.Name]; ok && prev.Body != nil && fn.Body != nil {
			return fmt.Errorf("minic: function %s redefined", fn.Name)
		}
		if prev, ok := c.funcs[fn.Name]; !ok || prev.Body == nil {
			c.funcs[fn.Name] = fn
		}
	}
	for _, g := range f.Globals {
		if _, ok := c.globals[g.Name]; ok {
			return fmt.Errorf("minic: global %s redefined", g.Name)
		}
		c.globals[g.Name] = g
		if g.Type.Kind == KArray || g.Type.Kind == KStruct {
			g.AddrTaken = true
		}
		if g.Type.Kind == KStruct && g.Type.S.IsUnion && !opts.AllowExtensions {
			return fmt.Errorf("minic: global %s: union is not supported by the Cheerp-style target; apply Transform first (§3.1)", g.Name)
		}
		if g.Init != nil {
			if err := c.checkInit(g.Type, g.Init); err != nil {
				return err
			}
		}
	}
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	opts     CheckOptions
	funcs    map[string]*FuncDecl
	globals  map[string]*VarDecl
	scopes   []map[string]*VarDecl
	curFn    *FuncDecl
	loops    int
	switches int
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*VarDecl{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(v *VarDecl) error {
	s := c.scopes[len(c.scopes)-1]
	if _, ok := s[v.Name]; ok {
		return fmt.Errorf("minic: %s redeclared in scope", v.Name)
	}
	s[v.Name] = v
	if v.Type.Kind == KArray || v.Type.Kind == KStruct {
		v.AddrTaken = true
	}
	if v.Type.Kind == KStruct && v.Type.S.IsUnion && !c.opts.AllowExtensions {
		return fmt.Errorf("minic: %s: union is not supported by the Cheerp-style target; apply Transform first (§3.1)", v.Name)
	}
	return nil
}

func (c *checker) lookup(name string) (*VarDecl, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v, true
		}
	}
	v, ok := c.globals[name]
	return v, ok
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.curFn = fn
	c.pushScope()
	defer c.popScope()
	for _, p := range fn.Params {
		p.IsParam = true
		if err := c.declare(p); err != nil {
			return err
		}
	}
	return c.checkStmt(fn.Body)
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		c.pushScope()
		defer c.popScope()
		for _, sub := range st.Stmts {
			if err := c.checkStmt(sub); err != nil {
				return err
			}
		}
	case *DeclStmt:
		for _, v := range st.Vars {
			if err := c.declare(v); err != nil {
				return err
			}
			if v.Init != nil {
				if err := c.checkInit(v.Type, v.Init); err != nil {
					return err
				}
			}
		}
	case *ExprStmt:
		_, err := c.checkExpr(st.X)
		return err
	case *IfStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := c.checkExpr(st.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *WhileStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *SwitchStmt:
		t, err := c.checkExpr(st.Tag)
		if err != nil {
			return err
		}
		if !t.IsInteger() {
			return fmt.Errorf("minic: switch tag must be integer, got %s", t)
		}
		c.switches++
		defer func() { c.switches-- }()
		for _, cs := range st.Cases {
			for _, sub := range cs.Body {
				if err := c.checkStmt(sub); err != nil {
					return err
				}
			}
		}
	case *BreakStmt:
		if c.loops == 0 && c.switches == 0 {
			return fmt.Errorf("minic: break outside loop or switch")
		}
	case *ContinueStmt:
		if c.loops == 0 {
			return fmt.Errorf("minic: continue outside loop")
		}
	case *ReturnStmt:
		if st.X == nil {
			if c.curFn.Ret.Kind != KVoid {
				return fmt.Errorf("minic: %s: return without value", c.curFn.Name)
			}
			return nil
		}
		t, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		if c.curFn.Ret.Kind == KVoid {
			return fmt.Errorf("minic: %s: return with value in void function", c.curFn.Name)
		}
		st.X = c.convert(st.X, t, c.curFn.Ret)
	case *TryStmt:
		if !c.opts.AllowExtensions {
			return fmt.Errorf("minic: try/catch is not supported by the Cheerp-style target; apply Transform first (§3.1)")
		}
		if err := c.checkStmt(st.Body); err != nil {
			return err
		}
		return c.checkStmt(st.Catch)
	case *ThrowStmt:
		if !c.opts.AllowExtensions {
			return fmt.Errorf("minic: throw is not supported by the Cheerp-style target; apply Transform first (§3.1)")
		}
		if st.X != nil {
			_, err := c.checkExpr(st.X)
			return err
		}
	}
	return nil
}

func (c *checker) checkCond(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if !t.IsArith() && t.Kind != KPtr {
		return fmt.Errorf("minic: condition must be scalar, got %s", t)
	}
	return nil
}

func (c *checker) checkInit(t *Type, init Expr) error {
	if il, ok := init.(*InitList); ok {
		switch t.Kind {
		case KArray:
			if len(il.Items) > t.Len {
				return fmt.Errorf("minic: too many initializers (%d for array of %d)", len(il.Items), t.Len)
			}
			for _, item := range il.Items {
				if err := c.checkInit(t.Elem, item); err != nil {
					return err
				}
			}
			il.setType(t)
			return nil
		case KStruct:
			if len(il.Items) > len(t.S.Fields) {
				return fmt.Errorf("minic: too many initializers for struct %s", t.S.Name)
			}
			for i, item := range il.Items {
				if err := c.checkInit(t.S.Fields[i].Type, item); err != nil {
					return err
				}
			}
			il.setType(t)
			return nil
		default:
			return fmt.Errorf("minic: braced initializer for scalar %s", t)
		}
	}
	it, err := c.checkExpr(init)
	if err != nil {
		return err
	}
	if !assignable(t, it) {
		return fmt.Errorf("minic: cannot initialize %s with %s", t, it)
	}
	return nil
}

func assignable(dst, src *Type) bool {
	if dst.IsArith() && src.IsArith() {
		return true
	}
	if dst.Kind == KPtr && src.Kind == KPtr {
		return true // C-permissive with a warning; the subset allows it
	}
	if dst.Kind == KPtr && src.Kind == KArray {
		return true
	}
	if dst.Kind == KPtr && src.IsInteger() {
		return true // NULL-style literals
	}
	if dst.Kind == KStruct && src.Kind == KStruct && dst.S == src.S {
		return true
	}
	return false
}

// UsualArith applies C's usual arithmetic conversions, returning the common
// type. It is exported for the IR builder, which re-derives operand types
// for compound assignments.
func UsualArith(a, b *Type) *Type { return usualArith(a, b) }

// usualArith applies C's usual arithmetic conversions, returning the common
// type.
func usualArith(a, b *Type) *Type {
	if a.Kind == KDouble || b.Kind == KDouble {
		return TDouble
	}
	if a.Kind == KFloat || b.Kind == KFloat {
		return TFloat
	}
	// Integer promotion: everything below int promotes to int.
	pa, pb := promote(a), promote(b)
	if pa.Kind == KULong || pb.Kind == KULong {
		return TULong
	}
	if pa.Kind == KLong || pb.Kind == KLong {
		if pa.Kind == KUInt || pb.Kind == KUInt {
			return TLong // long can represent uint under our 64-bit long
		}
		return TLong
	}
	if pa.Kind == KUInt || pb.Kind == KUInt {
		return TUInt
	}
	return TInt
}

func promote(t *Type) *Type {
	switch t.Kind {
	case KChar, KUChar, KShort, KUShort:
		return TInt
	}
	return t
}

// decay converts array-typed expressions to pointers.
func decay(t *Type) *Type {
	if t.Kind == KArray {
		return PtrTo(t.Elem)
	}
	return t
}

// convert wraps e in a cast to target type when needed.
func (c *checker) convert(e Expr, from, to *Type) Expr {
	if from.Equal(to) {
		return e
	}
	if from.Kind == KArray && to.Kind == KPtr {
		// Decay is representation-free.
		e.setType(to)
		return e
	}
	ce := &CastExpr{To: to, X: e}
	ce.setType(to)
	return ce
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *Index:
		return true
	case *Member:
		return true
	case *Unary:
		return x.Op == "*" && !x.Postfix
	}
	return false
}

func (c *checker) checkExpr(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *IntLit:
		if x.Type() != nil {
			return x.Type(), nil
		}
		if x.V > 0x7FFFFFFF || x.V < -0x80000000 {
			x.setType(TLong)
		} else {
			x.setType(TInt)
		}
		return x.Type(), nil
	case *FloatLit:
		x.setType(TDouble)
		return TDouble, nil
	case *StrLit:
		t := PtrTo(TChar)
		x.setType(t)
		return t, nil
	case *Ident:
		v, ok := c.lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("minic: line %d: undefined identifier %q", x.Line, x.Name)
		}
		x.Ref = v
		x.setType(v.Type)
		return v.Type, nil
	case *Unary:
		return c.checkUnary(x)
	case *Binary:
		return c.checkBinary(x)
	case *Assign:
		return c.checkAssign(x)
	case *Cond:
		if err := c.checkCond(x.C); err != nil {
			return nil, err
		}
		tt, err := c.checkExpr(x.T)
		if err != nil {
			return nil, err
		}
		ft, err := c.checkExpr(x.F)
		if err != nil {
			return nil, err
		}
		var t *Type
		switch {
		case tt.IsArith() && ft.IsArith():
			t = usualArith(tt, ft)
			x.T = c.convert(x.T, tt, t)
			x.F = c.convert(x.F, ft, t)
		case decay(tt).Kind == KPtr && (decay(ft).Kind == KPtr || ft.IsInteger()):
			t = decay(tt)
		case decay(ft).Kind == KPtr && tt.IsInteger():
			t = decay(ft)
		default:
			return nil, fmt.Errorf("minic: incompatible ternary arms %s and %s", tt, ft)
		}
		x.setType(t)
		return t, nil
	case *Call:
		return c.checkCall(x)
	case *Index:
		bt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		it, err := c.checkExpr(x.I)
		if err != nil {
			return nil, err
		}
		if !it.IsInteger() {
			return nil, fmt.Errorf("minic: array index must be integer, got %s", it)
		}
		switch bt.Kind {
		case KArray, KPtr:
			x.setType(bt.Elem)
			return bt.Elem, nil
		}
		return nil, fmt.Errorf("minic: cannot index %s", bt)
	case *Member:
		bt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		st := bt
		if x.Arrow {
			if bt.Kind != KPtr {
				return nil, fmt.Errorf("minic: -> on non-pointer %s", bt)
			}
			st = bt.Elem
		}
		if st.Kind != KStruct {
			return nil, fmt.Errorf("minic: member access on non-struct %s", st)
		}
		fld, ok := st.S.FieldByName(x.Name)
		if !ok {
			return nil, fmt.Errorf("minic: no member %q in %s", x.Name, st)
		}
		x.F = fld
		x.setType(fld.Type)
		return fld.Type, nil
	case *CastExpr:
		st, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if st.Kind == KStruct && x.To.Kind != KStruct {
			return nil, fmt.Errorf("minic: cannot cast struct %s to %s", st, x.To)
		}
		x.setType(x.To)
		return x.To, nil
	case *SizeofExpr:
		if x.X != nil {
			t, err := c.checkExpr(x.X)
			if err != nil {
				return nil, err
			}
			x.OfType = t
		}
		x.setType(TUInt)
		return TUInt, nil
	case *InitList:
		return nil, fmt.Errorf("minic: initializer list outside declaration")
	}
	return nil, fmt.Errorf("minic: unhandled expression %T", e)
}

func (c *checker) checkUnary(x *Unary) (*Type, error) {
	t, err := c.checkExpr(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "-", "+":
		if !t.IsArith() {
			return nil, fmt.Errorf("minic: unary %s on %s", x.Op, t)
		}
		pt := t
		if t.IsInteger() {
			pt = promote(t)
			x.X = c.convert(x.X, t, pt)
		}
		x.setType(pt)
		return pt, nil
	case "!":
		if !t.IsArith() && decay(t).Kind != KPtr {
			return nil, fmt.Errorf("minic: ! on %s", t)
		}
		x.setType(TInt)
		return TInt, nil
	case "~":
		if !t.IsInteger() {
			return nil, fmt.Errorf("minic: ~ on %s", t)
		}
		pt := promote(t)
		x.X = c.convert(x.X, t, pt)
		x.setType(pt)
		return pt, nil
	case "*":
		dt := decay(t)
		if dt.Kind != KPtr {
			return nil, fmt.Errorf("minic: dereference of non-pointer %s", t)
		}
		x.setType(dt.Elem)
		return dt.Elem, nil
	case "&":
		if !isLvalue(x.X) {
			return nil, fmt.Errorf("minic: & of non-lvalue")
		}
		if id, ok := x.X.(*Ident); ok {
			id.Ref.AddrTaken = true
		}
		pt := PtrTo(t)
		x.setType(pt)
		return pt, nil
	case "++", "--":
		if !isLvalue(x.X) {
			return nil, fmt.Errorf("minic: %s on non-lvalue", x.Op)
		}
		if !t.IsArith() && t.Kind != KPtr {
			return nil, fmt.Errorf("minic: %s on %s", x.Op, t)
		}
		x.setType(t)
		return t, nil
	}
	return nil, fmt.Errorf("minic: unknown unary op %s", x.Op)
}

func (c *checker) checkBinary(x *Binary) (*Type, error) {
	lt, err := c.checkExpr(x.X)
	if err != nil {
		return nil, err
	}
	rt, err := c.checkExpr(x.Y)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case ",":
		x.setType(rt)
		return rt, nil
	case "&&", "||":
		x.setType(TInt)
		return TInt, nil
	case "==", "!=", "<", ">", "<=", ">=":
		dl, dr := decay(lt), decay(rt)
		if dl.Kind == KPtr || dr.Kind == KPtr {
			x.setType(TInt)
			return TInt, nil
		}
		if !lt.IsArith() || !rt.IsArith() {
			return nil, fmt.Errorf("minic: comparison of %s and %s", lt, rt)
		}
		ct := usualArith(lt, rt)
		x.X = c.convert(x.X, lt, ct)
		x.Y = c.convert(x.Y, rt, ct)
		x.setType(TInt)
		return TInt, nil
	case "+", "-":
		dl, dr := decay(lt), decay(rt)
		if dl.Kind == KPtr && rt.IsInteger() {
			x.setType(dl)
			return dl, nil
		}
		if x.Op == "+" && lt.IsInteger() && dr.Kind == KPtr {
			x.setType(dr)
			return dr, nil
		}
		if x.Op == "-" && dl.Kind == KPtr && dr.Kind == KPtr {
			x.setType(TInt)
			return TInt, nil
		}
	case "<<", ">>":
		if !lt.IsInteger() || !rt.IsInteger() {
			return nil, fmt.Errorf("minic: shift of %s by %s", lt, rt)
		}
		pt := promote(lt)
		x.X = c.convert(x.X, lt, pt)
		x.Y = c.convert(x.Y, rt, promote(rt))
		x.setType(pt)
		return pt, nil
	}
	// Plain arithmetic / bitwise.
	if !lt.IsArith() || !rt.IsArith() {
		return nil, fmt.Errorf("minic: %s of %s and %s", x.Op, lt, rt)
	}
	switch x.Op {
	case "%", "&", "|", "^":
		if !lt.IsInteger() || !rt.IsInteger() {
			return nil, fmt.Errorf("minic: %s needs integers, got %s and %s", x.Op, lt, rt)
		}
	}
	ct := usualArith(lt, rt)
	x.X = c.convert(x.X, lt, ct)
	x.Y = c.convert(x.Y, rt, ct)
	x.setType(ct)
	return ct, nil
}

func (c *checker) checkAssign(x *Assign) (*Type, error) {
	if !isLvalue(x.LHS) {
		return nil, fmt.Errorf("minic: assignment to non-lvalue")
	}
	lt, err := c.checkExpr(x.LHS)
	if err != nil {
		return nil, err
	}
	rt, err := c.checkExpr(x.RHS)
	if err != nil {
		return nil, err
	}
	if x.Op == "=" {
		if !assignable(lt, rt) {
			return nil, fmt.Errorf("minic: cannot assign %s to %s", rt, lt)
		}
		if lt.IsArith() && rt.IsArith() {
			x.RHS = c.convert(x.RHS, rt, lt)
		}
		x.setType(lt)
		return lt, nil
	}
	// Compound assignment: lhs op= rhs.
	if decay(lt).Kind == KPtr && (x.Op == "+=" || x.Op == "-=") && rt.IsInteger() {
		x.setType(lt)
		return lt, nil
	}
	if !lt.IsArith() || !rt.IsArith() {
		return nil, fmt.Errorf("minic: %s of %s and %s", x.Op, lt, rt)
	}
	x.setType(lt)
	return lt, nil
}

func (c *checker) checkCall(x *Call) (*Type, error) {
	if sig, ok := builtins[x.Name]; ok {
		if _, shadowed := c.funcs[x.Name]; !shadowed || c.funcs[x.Name].Body == nil {
			if len(x.Args) != len(sig.params) {
				return nil, fmt.Errorf("minic: line %d: %s expects %d args, got %d", x.Line, x.Name, len(sig.params), len(x.Args))
			}
			for i, a := range x.Args {
				at, err := c.checkExpr(a)
				if err != nil {
					return nil, err
				}
				want := sig.params[i]
				if want.Kind == KPtr {
					if decay(at).Kind != KPtr {
						return nil, fmt.Errorf("minic: line %d: %s arg %d: want pointer, got %s", x.Line, x.Name, i+1, at)
					}
					continue
				}
				if !at.IsArith() {
					return nil, fmt.Errorf("minic: line %d: %s arg %d: want %s, got %s", x.Line, x.Name, i+1, want, at)
				}
				x.Args[i] = c.convert(a, at, want)
			}
			x.Builtin = x.Name
			x.setType(sig.ret)
			return sig.ret, nil
		}
	}
	fn, ok := c.funcs[x.Name]
	if !ok {
		return nil, fmt.Errorf("minic: line %d: call to undefined function %q", x.Line, x.Name)
	}
	if len(x.Args) != len(fn.Params) {
		return nil, fmt.Errorf("minic: line %d: %s expects %d args, got %d", x.Line, x.Name, len(fn.Params), len(x.Args))
	}
	for i, a := range x.Args {
		at, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		pt := fn.Params[i].Type
		if !assignable(pt, at) {
			return nil, fmt.Errorf("minic: line %d: %s arg %d: cannot pass %s as %s", x.Line, x.Name, i+1, at, pt)
		}
		if pt.IsArith() && at.IsArith() {
			x.Args[i] = c.convert(a, at, pt)
		}
	}
	x.Ref = fn
	x.setType(fn.Ret)
	return fn.Ret, nil
}
