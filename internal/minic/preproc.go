package minic

import (
	"fmt"
	"strings"
)

// Preprocess handles the directive subset the benchmark suites need:
// object-like #define, -D style external definitions (the study uses them to
// select input sizes, §3.2), #undef, #ifdef/#ifndef/#else/#endif, and
// #include/#pragma (ignored). It returns the token stream with macros
// expanded, ready for the parser.
func Preprocess(src string, defines map[string]string) ([]Token, error) {
	macros := map[string][]Token{}
	for name, val := range defines {
		toks, err := Lex(val)
		if err != nil {
			return nil, fmt.Errorf("minic: bad -D%s=%s: %w", name, val, err)
		}
		macros[name] = toks[:len(toks)-1] // strip EOF
	}

	var kept []string
	// condStack: each entry is whether the current region is active.
	condStack := []bool{true}
	active := func() bool {
		for _, a := range condStack {
			if !a {
				return false
			}
		}
		return true
	}
	for lineNo, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#") {
			if active() {
				kept = append(kept, line)
			} else {
				kept = append(kept, "")
			}
			continue
		}
		kept = append(kept, "") // keep line numbering aligned
		directive := strings.TrimSpace(trimmed[1:])
		fields := strings.Fields(directive)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "include", "pragma":
			// No file system: headers are modeled by builtins.
		case "define":
			if !active() {
				continue
			}
			if len(fields) < 2 {
				return nil, errf(lineNo+1, 1, "#define needs a name")
			}
			name := fields[1]
			if strings.Contains(name, "(") {
				return nil, errf(lineNo+1, 1, "function-like macros are not supported (object-like only)")
			}
			rest := strings.TrimSpace(strings.TrimPrefix(directive, "define"))
			rest = strings.TrimSpace(strings.TrimPrefix(rest, name))
			toks, err := Lex(rest)
			if err != nil {
				return nil, fmt.Errorf("minic: #define %s: %w", name, err)
			}
			// -D definitions take precedence (command line wins, as with cc).
			if _, fromCmdline := defines[name]; !fromCmdline {
				macros[name] = toks[:len(toks)-1]
			}
		case "undef":
			if active() && len(fields) >= 2 {
				delete(macros, fields[1])
			}
		case "ifdef", "ifndef":
			if len(fields) < 2 {
				return nil, errf(lineNo+1, 1, "#%s needs a name", fields[0])
			}
			_, defined := macros[fields[1]]
			cond := defined
			if fields[0] == "ifndef" {
				cond = !defined
			}
			condStack = append(condStack, cond)
		case "else":
			if len(condStack) < 2 {
				return nil, errf(lineNo+1, 1, "#else without #if")
			}
			condStack[len(condStack)-1] = !condStack[len(condStack)-1]
		case "endif":
			if len(condStack) < 2 {
				return nil, errf(lineNo+1, 1, "#endif without #if")
			}
			condStack = condStack[:len(condStack)-1]
		default:
			return nil, errf(lineNo+1, 1, "unsupported directive #%s", fields[0])
		}
	}
	if len(condStack) != 1 {
		return nil, fmt.Errorf("minic: unterminated #if block")
	}

	toks, err := Lex(strings.Join(kept, "\n"))
	if err != nil {
		return nil, err
	}
	return expandMacros(toks, macros, 0)
}

func expandMacros(toks []Token, macros map[string][]Token, depth int) ([]Token, error) {
	if depth > 32 {
		return nil, fmt.Errorf("minic: macro expansion too deep (recursive #define?)")
	}
	out := make([]Token, 0, len(toks))
	changed := false
	for _, t := range toks {
		if t.Kind == TokIdent {
			if rep, ok := macros[t.Text]; ok {
				changed = true
				for _, r := range rep {
					r.Line, r.Col = t.Line, t.Col
					out = append(out, r)
				}
				continue
			}
		}
		out = append(out, t)
	}
	if changed {
		return expandMacros(out, macros, depth+1)
	}
	return out, nil
}
