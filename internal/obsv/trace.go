// Package obsv is the study's unified observability layer: structured
// execution tracing and virtual-cycle profiling shared by the Wasm VM, the
// JS engine, the compiler driver, and the measurement harness.
//
// The paper's analysis sections attribute the Wasm/JS gap to *events* —
// tier-up points (§4.4), GC cycles (§4.6), memory grows (§4.2.2/§4.3),
// dynamic instruction mixes (Appendix D) — and this package gives every
// layer a common vocabulary for them. A Tracer is nil by default; every
// hook site in the VMs is guarded by a single nil check, so disabled
// tracing costs one predictable branch on the hot path and zero
// allocations.
//
// Timestamps are deterministic virtual cycles (the VMs' own clocks), so
// the same program traced twice produces byte-identical event streams.
// Harness-level events (CellStart/CellDone) are the one exception: they
// are stamped with wall-clock nanoseconds relative to the run start,
// because scheduling is what they observe.
package obsv

import "sync"

// Kind discriminates trace events.
type Kind uint8

// Event kinds.
const (
	// KindCallEnter/KindCallExit bracket one function activation in a VM.
	// Name is the function, TS the virtual-cycle clock at entry/exit.
	KindCallEnter Kind = iota
	KindCallExit
	// KindTierUp marks a function's promotion to the optimizing tier
	// (§4.4.2). Name is the function; A is the static size used for the
	// compile charge (instructions or AST nodes).
	KindTierUp
	// KindGCCycle marks one mark-sweep collection (§4.6). A is the bytes
	// freed, B the surviving object count; Dur is the collection charge in
	// virtual cycles.
	KindGCCycle
	// KindMemGrow marks one memory.grow (§4.2.2). Name is the requesting
	// function, A the delta in pages, B the previous page count (-1 on
	// failure).
	KindMemGrow
	// KindCompilePass is one compiler stage or optimization pass. Name is
	// the pass; Dur is its deterministic work estimate (IR nodes walked),
	// A/B are the node counts before/after.
	KindCompilePass
	// KindCellStart/KindCellDone bracket one harness measurement cell.
	// Name is the cell label; for CellDone, Dur is the cell's wall time in
	// nanoseconds and A the worker index that ran it.
	KindCellStart
	KindCellDone
	// KindDivergence marks one cross-backend disagreement found by the
	// differential oracle (internal/difftest). Name is the program label
	// with the optimization level; A counts the divergence.
	KindDivergence
	// KindFault marks one injected fault firing (internal/faultinject).
	// Name is the injection point, Track the emitting layer.
	KindFault
	// KindRetry marks one harness retry of a failed cell. Name is the cell
	// label; A is the attempt number being started (1-based), B the seeded
	// backoff in milliseconds that preceded it.
	KindRetry
	// KindDegrade marks the harness re-running a cell one rung down the
	// graceful-degradation ladder. Name is the cell label; Track carries
	// the rung ("noreg", "noreg+nofuse", "nojit", "O0").
	KindDegrade
	// KindQuarantine marks a benchmark being quarantined after N
	// consecutive failures. Name is the cell label; A is the consecutive
	// failure count that tripped it.
	KindQuarantine
	// KindTruncation is a synthetic marker inserted by exporters where a
	// bounded buffer lost events: after the last stored event for a
	// Collector (which keeps the *oldest* events once Limit is reached)
	// or before the first for a flight recorder (which keeps the
	// *newest*). Name describes the loss; A is the number of events lost.
	KindTruncation
	// KindAOTCompile marks a hot function's register body being AOT-compiled
	// into superblocks of pre-bound closures (wasmvm third tier). Name is
	// the function; A is the superblock count, B the register-form length.
	// The compile charges no virtual cycles (like fusion and register
	// translation, the AOT tier is invisible to the virtual clock).
	KindAOTCompile
	numKinds
)

var kindNames = [numKinds]string{
	"call-enter", "call-exit", "tier-up", "gc-cycle", "mem-grow",
	"compile-pass", "cell-start", "cell-done", "divergence",
	"fault", "retry", "degrade", "quarantine", "truncation",
	"aot-compile",
}

// String returns the kind's short name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace record. Events are plain values with fixed typed
// fields (no maps) so that encoding them is deterministic.
type Event struct {
	Kind Kind
	// TS is the timestamp in virtual cycles (≈ nanoseconds at the 1 GHz
	// reference clock); harness events use wall nanoseconds.
	TS float64
	// Dur is the span length for complete events (compile passes, cells,
	// GC cycles); zero for instants and begin/end pairs.
	Dur float64
	// Name identifies the subject: function, pass, or cell.
	Name string
	// Track labels the emitting layer ("wasm", "js", "compile",
	// "harness"), optionally prefixed by the browser profile via WithTrack.
	Track string
	// A and B carry kind-specific numeric payload (see the Kind docs).
	A, B float64
}

// Tracer receives trace events. Implementations used from RunCells must be
// safe for concurrent Emit calls (Collector is).
type Tracer interface {
	Emit(Event)
}

// TruncationEvent builds the synthetic marker for lost events. The
// timestamp ts should place the marker where the loss happened: the last
// stored event's TS for a keep-oldest Collector, the first retained
// event's TS for a keep-newest flight recorder.
func TruncationEvent(lost int, note string, ts float64) Event {
	return Event{Kind: KindTruncation, TS: ts, Name: note, A: float64(lost)}
}

// Collector is the standard Tracer: an in-memory, mutex-protected event
// buffer. With a Limit set it keeps the *oldest* events and counts the
// newest in Dropped() — the right shape for "how did the run begin". Its
// complement is telemetry.FlightRecorder, a bounded ring keeping the
// *newest* events for "what just happened". Exporters surface the loss
// either way via EventsWithTruncation. The zero value is ready to use.
type Collector struct {
	mu     sync.Mutex
	events []Event
	// Limit caps the buffer (0 = unlimited); once reached, further events
	// are counted in Dropped but not stored.
	Limit   int
	dropped int
}

// Emit appends the event (or drops it once Limit is reached).
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	if c.Limit > 0 && len(c.events) >= c.Limit {
		c.dropped++
	} else {
		c.events = append(c.events, e)
	}
	c.mu.Unlock()
}

// Events returns a snapshot of the collected events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of stored events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Dropped returns how many events the Limit discarded.
func (c *Collector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// EventsWithTruncation returns the stored events followed by a synthetic
// KindTruncation marker when the Limit discarded any — so exporters show
// where the record stops instead of silently ending. With nothing
// dropped it is identical to Events.
func (c *Collector) EventsWithTruncation() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]Event(nil), c.events...)
	if c.dropped > 0 {
		var ts float64
		if n := len(out); n > 0 {
			ts = out[n-1].TS
		}
		out = append(out, TruncationEvent(c.dropped,
			"collector limit reached: newest events dropped", ts))
	}
	return out
}

// Reset discards all collected events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = c.events[:0]
	c.dropped = 0
	c.mu.Unlock()
}

// trackTracer prefixes every event's track, labeling which engine/profile
// a shared collector's events came from.
type trackTracer struct {
	inner  Tracer
	prefix string
}

func (t trackTracer) Emit(e Event) {
	if e.Track == "" {
		e.Track = t.prefix
	} else {
		e.Track = t.prefix + "/" + e.Track
	}
	t.inner.Emit(e)
}

// WithTrack wraps a tracer so every event's Track is prefixed (e.g.
// "chrome-desktop" turns the VM's "wasm" into "chrome-desktop/wasm").
// A nil tracer stays nil, preserving the disabled fast path.
func WithTrack(t Tracer, prefix string) Tracer {
	if t == nil {
		return nil
	}
	return trackTracer{inner: t, prefix: prefix}
}

// multiTracer fans one event stream out to several tracers.
type multiTracer struct{ tracers []Tracer }

func (m multiTracer) Emit(e Event) {
	for _, t := range m.tracers {
		t.Emit(e)
	}
}

// Multi tees events to every non-nil tracer. Nil entries are dropped; if
// none (or one) remain, Multi returns nil (or that tracer) so the
// disabled fast path and single-tracer dispatch stay unwrapped.
func Multi(tracers ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiTracer{tracers: kept}
}

// FilterKinds returns the subset of events whose kind is in kinds,
// preserving order.
func FilterKinds(events []Event, kinds ...Kind) []Event {
	want := [numKinds]bool{}
	for _, k := range kinds {
		if int(k) < int(numKinds) {
			want[k] = true
		}
	}
	var out []Event
	for _, e := range events {
		if int(e.Kind) < int(numKinds) && want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}
