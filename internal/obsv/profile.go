package obsv

import (
	"fmt"
	"sort"
	"strings"
)

// ClassCount is one cost-class bucket of a function's dynamic instruction
// mix (the paper's Appendix D counts, attributed per function).
type ClassCount struct {
	Class string
	Count uint64
}

// FuncProfile is one function's virtual-cycle profile: how often it ran,
// how many cycles it spent in its own code vs. including callees, and its
// dynamic instruction mix by cost class.
type FuncProfile struct {
	Name  string
	Track string
	Calls uint64
	// SelfCycles excludes callees; TotalCycles includes them (recursive
	// activations double-count Total, as in conventional profilers).
	SelfCycles  float64
	TotalCycles float64
	Classes     []ClassCount
}

// SortProfiles orders profiles by self cycles descending (ties broken by
// name) — the conventional "hottest first" profile order. Sorting is
// deterministic so rendered tables and exported traces are byte-stable.
func SortProfiles(profiles []FuncProfile) {
	sort.SliceStable(profiles, func(i, j int) bool {
		if profiles[i].SelfCycles != profiles[j].SelfCycles {
			return profiles[i].SelfCycles > profiles[j].SelfCycles
		}
		return profiles[i].Name < profiles[j].Name
	})
}

// ProfileTable renders profiles as a plain-text table (hottest first).
func ProfileTable(profiles []FuncProfile) string {
	ps := append([]FuncProfile(nil), profiles...)
	SortProfiles(ps)
	var totalSelf float64
	for _, p := range ps {
		totalSelf += p.SelfCycles
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %14s %14s %6s  %s\n",
		"func", "calls", "self-cycles", "total-cycles", "self%", "top classes")
	for _, p := range ps {
		pct := 0.0
		if totalSelf > 0 {
			pct = 100 * p.SelfCycles / totalSelf
		}
		fmt.Fprintf(&b, "%-24s %10d %14.0f %14.0f %5.1f%%  %s\n",
			p.Name, p.Calls, p.SelfCycles, p.TotalCycles, pct, topClasses(p.Classes, 3))
	}
	return b.String()
}

// topClasses renders the n largest cost-class buckets as "class:count".
func topClasses(classes []ClassCount, n int) string {
	cs := append([]ClassCount(nil), classes...)
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].Count != cs[j].Count {
			return cs[i].Count > cs[j].Count
		}
		return cs[i].Class < cs[j].Class
	})
	if len(cs) > n {
		cs = cs[:n]
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%s:%d", c.Class, c.Count)
	}
	return strings.Join(parts, " ")
}

// FlameNode is one node of the flame-style call tree built from
// CallEnter/CallExit event nesting.
type FlameNode struct {
	Name string
	// Calls is how many activations merged into this node.
	Calls uint64
	// TotalCycles includes children; SelfCycles excludes them.
	TotalCycles float64
	SelfCycles  float64
	Children    []*FlameNode
}

func (n *FlameNode) child(name string) *FlameNode {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	c := &FlameNode{Name: name}
	n.Children = append(n.Children, c)
	return c
}

// Flame builds flame trees from a trace, one root set per track, keyed by
// track name. Call events from a single VM are strictly nested (the VMs
// are single-threaded), so a simple stack replay suffices. Unbalanced
// tails (calls still open at end of trace, e.g. after a trap) are closed
// at the last event's timestamp.
func Flame(events []Event) map[string][]*FlameNode {
	type frame struct {
		node  *FlameNode
		start float64
		child float64 // cycles consumed by completed children
	}
	type trackState struct {
		root  *FlameNode // synthetic holder; its Children are the roots
		stack []frame
		last  float64
	}
	states := map[string]*trackState{}
	state := func(track string) *trackState {
		s, ok := states[track]
		if !ok {
			s = &trackState{root: &FlameNode{}}
			states[track] = s
		}
		return s
	}
	for _, e := range events {
		if e.Kind != KindCallEnter && e.Kind != KindCallExit {
			continue
		}
		s := state(e.Track)
		s.last = e.TS
		switch e.Kind {
		case KindCallEnter:
			parent := s.root
			if n := len(s.stack); n > 0 {
				parent = s.stack[n-1].node
			}
			node := parent.child(e.Name)
			node.Calls++
			s.stack = append(s.stack, frame{node: node, start: e.TS})
		case KindCallExit:
			n := len(s.stack)
			if n == 0 {
				continue // stray exit; ignore
			}
			fr := s.stack[n-1]
			s.stack = s.stack[:n-1]
			total := e.TS - fr.start
			fr.node.TotalCycles += total
			fr.node.SelfCycles += total - fr.child
			if n >= 2 {
				s.stack[n-2].child += total
			}
		}
	}
	out := map[string][]*FlameNode{}
	for track, s := range states {
		// Close any frames left open by a trap or truncated trace.
		for n := len(s.stack); n > 0; n-- {
			fr := s.stack[n-1]
			total := s.last - fr.start
			fr.node.TotalCycles += total
			fr.node.SelfCycles += total - fr.child
			if n >= 2 {
				s.stack[n-2].child += total
			}
			s.stack = s.stack[:n-1]
		}
		if len(s.root.Children) > 0 {
			out[track] = s.root.Children
		}
	}
	return out
}
