// Overhead check for the tracing hooks on the wasmvm interpreter hot path.
// The package is obsv_test (not obsv) because it builds a real module via
// the compiler, which itself imports obsv.
//
// Run with:
//
//	go test -bench Interp -benchtime 5x ./internal/obsv/
//
// BenchmarkInterpBaseline measures the seed configuration (no tracer, no
// profiling — the per-instruction guard reduces to one nil pointer check);
// BenchmarkInterpProfiled measures the same run with profiling enabled and
// BenchmarkInterpTraced with a collector attached. The observability
// contract is that Baseline stays within ~2% of the pre-instrumentation
// interpreter; TestNilTracerGuardIsCheap asserts the cheap-path invariant
// structurally by comparing instruction throughput.
package obsv_test

import (
	"testing"

	"wasmbench/internal/compiler"
	"wasmbench/internal/ir"
	"wasmbench/internal/obsv"
	"wasmbench/internal/telemetry"
	"wasmbench/internal/wasm"
	"wasmbench/internal/wasmvm"
)

const benchSrc = `
int A[40000];
int main() {
  int i; int t; int acc;
  acc = 0;
  for (t = 0; t < 40; t = t + 1) {
    for (i = 0; i < 40000; i = i + 1) {
      A[i] = A[i] + i % 7;
    }
    for (i = 0; i < 40000; i = i + 1) {
      acc = acc + A[i];
    }
  }
  return acc & 255;
}
`

func buildModule(tb testing.TB) (*wasm.Module, int) {
	tb.Helper()
	art, err := compiler.Compile(benchSrc, compiler.Options{
		Opt: ir.O2, Targets: []compiler.Target{compiler.TargetWasm}})
	if err != nil {
		tb.Fatal(err)
	}
	return art.Module, len(art.WasmBinary)
}

func runOnce(tb testing.TB, mod *wasm.Module, size int, cfg wasmvm.Config) *wasmvm.VM {
	tb.Helper()
	vm, err := wasmvm.New(mod, size, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	compiler.BindWasmImports(vm)
	if err := vm.Instantiate(); err != nil {
		tb.Fatal(err)
	}
	if _, err := vm.Call("main"); err != nil {
		tb.Fatal(err)
	}
	return vm
}

func BenchmarkInterpBaseline(b *testing.B) {
	mod, size := buildModule(b)
	cfg := wasmvm.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce(b, mod, size, cfg)
	}
}

func BenchmarkInterpProfiled(b *testing.B) {
	mod, size := buildModule(b)
	cfg := wasmvm.DefaultConfig()
	cfg.Profile = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce(b, mod, size, cfg)
	}
}

func BenchmarkInterpTraced(b *testing.B) {
	mod, size := buildModule(b)
	cfg := wasmvm.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coll := &obsv.Collector{}
		cfg.Tracer = coll
		runOnce(b, mod, size, cfg)
	}
}

// BenchmarkInterpInstrumented measures the live-telemetry configuration:
// VM instruments attached to a registry (bulk counters flush per exported
// call; rare events update at their hook sites). The contract is that this
// stays within noise of Baseline — the dispatch loop carries no telemetry
// writes.
func BenchmarkInterpInstrumented(b *testing.B) {
	mod, size := buildModule(b)
	cfg := wasmvm.DefaultConfig()
	cfg.Instruments = telemetry.NewVMInstruments(telemetry.NewRegistry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce(b, mod, size, cfg)
	}
}

// BenchmarkRegistryCounterAdd is the raw instrument hot path: one striped
// float add per op, contended across GOMAXPROCS goroutines (the shape of
// per-call cycle flushes from a worker pool).
func BenchmarkRegistryCounterAdd(b *testing.B) {
	c := telemetry.NewRegistry().Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1.5)
		}
	})
	if c.Value() <= 0 {
		b.Fatal("counter lost updates")
	}
}

// TestNilTelemetryAllocationFree proves the disabled telemetry path adds
// zero allocations: every hook the VMs, toolchain, and harness call on nil
// instruments must not allocate (they reduce to one branch).
func TestNilTelemetryAllocationFree(t *testing.T) {
	var (
		vmInst   *telemetry.VMInstruments
		c        *telemetry.Counter
		g        *telemetry.Gauge
		h        *telemetry.Histogram
		f        *telemetry.FlightRecorder
		hub      *telemetry.Hub
		sinkT    obsv.Tracer
		sinkR    *telemetry.Registry
		sinkProf []obsv.FuncProfile
	)
	allocs := testing.AllocsPerRun(1000, func() {
		// The exact calls instrumented code makes, on the disabled path.
		c.Inc()
		c.Add(123.5)
		g.Set(1)
		g.SetMax(2)
		h.Observe(0.5)
		f.Emit(obsv.Event{Kind: obsv.KindTierUp})
		sinkT = hub.Tracer()
		sinkR = hub.Registry()
		sinkProf = hub.Profiles()
		if vmInst != nil { // the hook-site guard itself
			vmInst.TierUps.Inc()
		}
	})
	_, _, _ = sinkT, sinkR, sinkProf
	if allocs != 0 {
		t.Fatalf("nil-telemetry hooks allocate %v times per run, want 0", allocs)
	}
}

// TestInstrumentsPreserveVirtualMetrics is the whole-VM form of the same
// contract: attaching instruments must leave every virtual metric
// byte-identical — instruments observe the clock, they never feed it.
func TestInstrumentsPreserveVirtualMetrics(t *testing.T) {
	mod, size := buildModule(t)
	off := runOnce(t, mod, size, wasmvm.DefaultConfig())

	reg := telemetry.NewRegistry()
	cfg := wasmvm.DefaultConfig()
	cfg.Instruments = telemetry.NewVMInstruments(reg)
	on := runOnce(t, mod, size, cfg)

	if off.Cycles() != on.Cycles() {
		t.Fatalf("instruments changed virtual time: %v vs %v", off.Cycles(), on.Cycles())
	}
	if off.Stats() != on.Stats() {
		t.Fatalf("instruments changed stats:\noff %+v\non  %+v", off.Stats(), on.Stats())
	}
	// And the instruments saw the run they watched.
	snap := reg.Snapshot()
	vals := map[string]float64{}
	for _, m := range snap.Metrics {
		vals[m.Name] = m.Value
	}
	if got := vals["wasm_steps_total"]; got != float64(on.Stats().Steps) {
		t.Fatalf("wasm_steps_total = %v, VM counted %d", got, on.Stats().Steps)
	}
	if got := vals["wasm_runs_total"]; got != 1 {
		t.Fatalf("wasm_runs_total = %v, want 1", got)
	}
}

// TestNilTracerGuardIsCheap verifies the disabled-path contract without
// relying on wall-clock timing (which is too noisy for CI): with tracing
// off, the VM must take the exact same virtual-cycle path as the seed —
// identical cycles, steps, and results — and must not retain any profile
// state.
func TestNilTracerGuardIsCheap(t *testing.T) {
	mod, size := buildModule(t)
	off := runOnce(t, mod, size, wasmvm.DefaultConfig())
	if got := off.Profile(); got != nil {
		t.Fatalf("disabled VM retained %d profiles", len(got))
	}

	cfg := wasmvm.DefaultConfig()
	cfg.Profile = true
	on := runOnce(t, mod, size, cfg)
	if off.Cycles() != on.Cycles() {
		t.Fatalf("profiling changed virtual time: %v vs %v", off.Cycles(), on.Cycles())
	}
	if off.Stats().Steps != on.Stats().Steps {
		t.Fatalf("profiling changed step count: %d vs %d", off.Stats().Steps, on.Stats().Steps)
	}
	profs := on.Profile()
	if len(profs) == 0 {
		t.Fatal("profiled VM produced no function profiles")
	}
	var total float64
	for _, p := range profs {
		total += p.SelfCycles
	}
	// Self cycles across all functions sum to the in-call portion of the
	// run: everything except module decode/instantiate setup, which is
	// charged outside any frame. It must never exceed the clock, and for
	// this compute-bound kernel it covers essentially all of it.
	if total > on.Cycles()+1e-6 {
		t.Fatalf("self-cycle sum %v exceeds total cycles %v", total, on.Cycles())
	}
	if total < 0.99*on.Cycles() {
		t.Fatalf("self-cycle sum %v covers <99%% of total cycles %v", total, on.Cycles())
	}
}
