package obsv

import (
	"fmt"
	"strings"
	"time"
)

// CellMetric records the harness-level schedule of one measurement cell.
type CellMetric struct {
	Label  string
	Worker int
	// QueueDepth is how many cells were queued at the moment this one was
	// picked up, including the cell itself: a single worker draining k
	// cells records k, k-1, …, 1.
	QueueDepth int
	// Start is the offset from the run start.
	Start time.Duration
	// Compile and Measure split the cell's wall time into toolchain work
	// and VM execution; Wall is the full span (compile + measure + glue).
	Compile time.Duration
	Measure time.Duration
	Wall    time.Duration
	Failed  bool
	// CacheHit reports that the cell's artifact came from the harness
	// compile cache (or from waiting on another worker's in-flight
	// compile) instead of being compiled by this cell.
	CacheHit bool
	// TierUps counts VM tier promotions during the measurement (Wasm
	// functions or JS code objects), and BasicCycles/OptCycles split the
	// cell's virtual instruction cycles by the tier that charged them
	// (Wasm cells only; JS cells report zero). AOTCycles is the portion of
	// OptCycles charged while the AOT superblock dispatcher ran — a
	// sub-split, always ≤ OptCycles, so the three render as
	// basic / (opt − aot) / aot.
	TierUps     int
	BasicCycles float64
	OptCycles   float64
	AOTCycles   float64
	// Attempts is how many times the harness ran the cell (1 = first try
	// succeeded; retries and degradation rungs each add one).
	Attempts int
	// Degraded names the degradation-ladder rung that finally produced the
	// cell's result ("noreg", "noreg+nofuse", "nojit", "O0"); "" when the
	// cell ran at full configuration.
	Degraded string
	// Quarantined reports the cell was skipped because its benchmark
	// exceeded the consecutive-failure quarantine threshold.
	Quarantined bool
	// Resumed reports the cell's result was restored from a checkpoint
	// file instead of being executed (Attempts is 0 for such cells).
	Resumed bool
	// VMPooled reports the cell's Wasm run was served through the harness
	// instance pool (snapshot clone or recycled instance); VMPoolHit
	// narrows that to a recycled instance. Wall-clock bookkeeping only —
	// virtual metrics are identical to a cold run by construction.
	VMPooled  bool
	VMPoolHit bool
}

// RunMetrics aggregates one RunCells invocation's schedule.
type RunMetrics struct {
	Workers int
	// Span is the wall time from run start to the last cell completion.
	Span  time.Duration
	Cells []CellMetric
	// Compile-cache counters for the run (deltas when the cache is shared
	// across runs): CacheHits resolved instantly, CacheMisses compiled,
	// CacheDedupWaits blocked on another worker's in-flight compile.
	// CacheEnabled distinguishes a disabled cache from an idle one.
	CacheEnabled    bool
	CacheHits       int
	CacheMisses     int
	CacheDedupWaits int
	// Robustness counters (all zero on a fault-free run, keeping Render's
	// output byte-identical to a harness without the resilience layer):
	// FaultsInjected totals fault-plan firings observed by the run,
	// Retries counts re-executions of failed cells, Degraded counts cells
	// whose result came from a degradation rung, and Quarantined counts
	// cells skipped after their benchmark tripped the quarantine threshold.
	FaultsInjected int
	Retries        int
	Degraded       int
	Quarantined    int
	// Instance-pool counters (zero and hidden when RunOptions.VMPool was
	// off, keeping Render's output byte-identical): checkout hits served by
	// recycled instances, misses that cloned from the snapshot, recycles
	// returned to the pool, and cold fallbacks past the pool bound.
	VMPoolEnabled       bool
	VMPoolHits          int
	VMPoolMisses        int
	VMPoolRecycles      int
	VMPoolColdFallbacks int
}

// Utilization returns busy-time / (workers × span): 1.0 means every
// worker was busy for the whole run.
func (m *RunMetrics) Utilization() float64 {
	if m.Workers == 0 || m.Span <= 0 {
		return 0
	}
	var busy time.Duration
	for _, c := range m.Cells {
		busy += c.Wall
	}
	return float64(busy) / (float64(m.Workers) * float64(m.Span))
}

// CompileShare returns the fraction of total cell wall time spent in the
// toolchain rather than measuring.
func (m *RunMetrics) CompileShare() float64 {
	var compile, wall time.Duration
	for _, c := range m.Cells {
		compile += c.Compile
		wall += c.Wall
	}
	if wall == 0 {
		return 0
	}
	return float64(compile) / float64(wall)
}

// Render returns the per-cell table plus the run summary lines.
func (m *RunMetrics) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %3s %5s %10s %10s %10s %10s %5s %7s %5s %5s\n",
		"cell", "wkr", "queue", "start", "compile", "measure", "wall", "cache", "tierups", "opt%", "aot%")
	for _, c := range m.Cells {
		status := ""
		if c.Quarantined {
			status = "  QUARANTINED"
		} else if c.Failed {
			status = "  FAILED"
		}
		if c.Attempts > 1 {
			status += fmt.Sprintf("  retries:%d", c.Attempts-1)
		}
		if c.Degraded != "" {
			status += "  degraded:" + c.Degraded
		}
		if c.Resumed {
			status += "  resumed"
		}
		// The cache column folds in the VM pool: "hit" is an artifact-cache
		// hit, "vm" a pooled VM checkout, "hit+vm" both.
		cacheCol := "-"
		switch {
		case c.CacheHit && c.VMPooled:
			cacheCol = "hit+vm"
		case c.CacheHit:
			cacheCol = "hit"
		case c.VMPooled:
			cacheCol = "vm"
		}
		// Per-tier share of the cell's instruction cycles: opt% is the
		// optimizing tier's share, aot% the part of it that ran under the
		// AOT superblock dispatcher (aot ⊆ opt, matching the wasmrun
		// basic=/opt=/aot= line and wasm_tier_cycles_total labels).
		optCol, aotCol := "-", "-"
		if total := c.BasicCycles + c.OptCycles; total > 0 {
			optCol = fmt.Sprintf("%.0f", 100*c.OptCycles/total)
			aotCol = fmt.Sprintf("%.0f", 100*c.AOTCycles/total)
		}
		fmt.Fprintf(&b, "%-32s %3d %5d %10s %10s %10s %10s %5s %7d %5s %5s%s\n",
			c.Label, c.Worker, c.QueueDepth,
			fmtDur(c.Start), fmtDur(c.Compile), fmtDur(c.Measure), fmtDur(c.Wall),
			cacheCol, c.TierUps, optCol, aotCol, status)
	}
	fmt.Fprintf(&b, "cells: %d  workers: %d  span: %s  utilization: %.1f%%  compile-share: %.1f%%\n",
		len(m.Cells), m.Workers, fmtDur(m.Span),
		100*m.Utilization(), 100*m.CompileShare())
	if m.CacheEnabled {
		fmt.Fprintf(&b, "compile cache: %d hits  %d misses  %d dedup-waits\n",
			m.CacheHits, m.CacheMisses, m.CacheDedupWaits)
	}
	if m.VMPoolEnabled {
		fmt.Fprintf(&b, "vm pool: %d hits  %d misses  %d recycles  %d cold-fallbacks\n",
			m.VMPoolHits, m.VMPoolMisses, m.VMPoolRecycles, m.VMPoolColdFallbacks)
	}
	if m.FaultsInjected > 0 || m.Retries > 0 || m.Degraded > 0 || m.Quarantined > 0 {
		fmt.Fprintf(&b, "robustness: %d faults injected  %d retries  %d degraded  %d quarantined\n",
			m.FaultsInjected, m.Retries, m.Degraded, m.Quarantined)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
