package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Trace exporters. All output is deterministic: a given event stream and
// profile set always serializes to identical bytes (fields are emitted in
// fixed order and map iteration is avoided or sorted).

// jnum renders a float as a JSON number.
func jnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// jstr renders a string as a JSON string.
func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// usFromCycles converts a virtual-cycle timestamp to trace microseconds
// (cycles are nanosecond-scale at the 1 GHz reference clock).
func usFromCycles(c float64) float64 { return c / 1e3 }

// WriteChromeTrace serializes events (and optional per-function profiles)
// in the Chrome trace_event JSON format, loadable in chrome://tracing and
// Perfetto. Tracks become named threads; CallEnter/CallExit map to B/E
// duration events, instants (tier-up, GC, grow) to "i", and spans
// (compile passes, cells) to "X" complete events. Profiles are appended as
// consecutive slices on a per-track "profile:" thread with calls and
// self/total cycles in args.
func WriteChromeTrace(w io.Writer, events []Event, profiles []FuncProfile) error {
	// Assign thread ids to tracks in first-appearance order (deterministic
	// for a deterministic stream).
	tids := map[string]int{}
	var tracks []string
	tidOf := func(track string) int {
		if track == "" {
			track = "events"
		}
		id, ok := tids[track]
		if !ok {
			id = len(tracks) + 1
			tids[track] = id
			tracks = append(tracks, track)
		}
		return id
	}
	for _, e := range events {
		tidOf(e.Track)
	}
	profTrack := func(p FuncProfile) string {
		if p.Track == "" {
			return "profile"
		}
		return "profile:" + p.Track
	}
	ps := append([]FuncProfile(nil), profiles...)
	SortProfiles(ps)
	for _, p := range ps {
		tidOf(profTrack(p))
	}

	var b strings.Builder
	b.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for _, track := range tracks {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			tids[track], jstr(track)))
	}
	for _, e := range events {
		tid := tidOf(e.Track)
		ts := jnum(usFromCycles(e.TS))
		switch e.Kind {
		case KindCallEnter:
			emit(fmt.Sprintf(`{"name":%s,"cat":"call","ph":"B","pid":1,"tid":%d,"ts":%s}`,
				jstr(e.Name), tid, ts))
		case KindCallExit:
			emit(fmt.Sprintf(`{"name":%s,"cat":"call","ph":"E","pid":1,"tid":%d,"ts":%s}`,
				jstr(e.Name), tid, ts))
		case KindTierUp, KindMemGrow, KindAOTCompile:
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%s,"args":{"a":%s,"b":%s}}`,
				jstr(e.Kind.String()+" "+e.Name), jstr(e.Kind.String()), tid, ts, jnum(e.A), jnum(e.B)))
		case KindGCCycle:
			emit(fmt.Sprintf(`{"name":"gc-cycle","cat":"gc","ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"args":{"freed_bytes":%s,"live_objects":%s}}`,
				tid, ts, jnum(usFromCycles(e.Dur)), jnum(e.A), jnum(e.B)))
		case KindCompilePass:
			emit(fmt.Sprintf(`{"name":%s,"cat":"compile","ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"args":{"nodes_before":%s,"nodes_after":%s}}`,
				jstr(e.Name), tid, ts, jnum(usFromCycles(e.Dur)), jnum(e.A), jnum(e.B)))
		case KindCellStart:
			emit(fmt.Sprintf(`{"name":%s,"cat":"cell","ph":"i","s":"p","pid":1,"tid":%d,"ts":%s}`,
				jstr(e.Name), tid, ts))
		case KindCellDone:
			emit(fmt.Sprintf(`{"name":%s,"cat":"cell","ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"args":{"worker":%s}}`,
				jstr(e.Name), tid, jnum(usFromCycles(e.TS-e.Dur)), jnum(usFromCycles(e.Dur)), jnum(e.A)))
		case KindFault, KindRetry, KindDegrade, KindQuarantine:
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%s,"args":{"a":%s,"b":%s}}`,
				jstr(e.Kind.String()+" "+e.Name), jstr(e.Kind.String()), tid, ts, jnum(e.A), jnum(e.B)))
		case KindTruncation:
			// Global (s:"g") instant so the loss is visible on every track.
			emit(fmt.Sprintf(`{"name":%s,"cat":"truncation","ph":"i","s":"g","pid":1,"tid":%d,"ts":%s,"args":{"events_lost":%s}}`,
				jstr(fmt.Sprintf("TRUNCATED: %.0f events lost (%s)", e.A, e.Name)), tid, ts, jnum(e.A)))
		}
	}
	// Per-function profile slices: consecutive spans sized by total cycles.
	cursor := map[int]float64{}
	for _, p := range ps {
		tid := tidOf(profTrack(p))
		start := cursor[tid]
		dur := usFromCycles(p.TotalCycles)
		cursor[tid] = start + dur
		emit(fmt.Sprintf(`{"name":%s,"cat":"profile","ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"args":{"calls":%d,"self_cycles":%s,"total_cycles":%s%s}}`,
			jstr(p.Name), tid, jnum(start), jnum(dur), p.Calls,
			jnum(p.SelfCycles), jnum(p.TotalCycles), classArgs(p.Classes)))
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func classArgs(classes []ClassCount) string {
	var b strings.Builder
	for _, c := range classes {
		if c.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, ",%s:%d", jstr("n_"+c.Class), c.Count)
	}
	return b.String()
}

// WriteFolded serializes the trace's call tree in the folded-stacks text
// format consumed by flamegraph.pl and speedscope: one line per stack,
// frames joined by ';', followed by the stack's self cycles.
func WriteFolded(w io.Writer, events []Event) error {
	trees := Flame(events)
	tracks := make([]string, 0, len(trees))
	for t := range trees {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	var b strings.Builder
	var walk func(prefix string, nodes []*FlameNode)
	walk = func(prefix string, nodes []*FlameNode) {
		for _, n := range nodes {
			stack := prefix + n.Name
			if c := int64(n.SelfCycles + 0.5); c > 0 {
				fmt.Fprintf(&b, "%s %d\n", stack, c)
			}
			walk(stack+";", n.Children)
		}
	}
	for _, t := range tracks {
		prefix := ""
		if t != "" {
			prefix = t + ";"
		}
		walk(prefix, trees[t])
	}
	// Truncation markers become a synthetic stack weighted by the number of
	// lost events, so flame graphs show the hole instead of hiding it.
	for _, e := range events {
		if e.Kind == KindTruncation {
			fmt.Fprintf(&b, "[TRUNCATED: %s] %.0f\n", e.Name, e.A)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CompilePassTable renders KindCompilePass events as a plain-text table:
// pass name, work estimate, and IR node delta.
func CompilePassTable(events []Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %10s %10s %8s\n", "pass", "work", "before", "after", "delta")
	var totalWork float64
	for _, e := range events {
		if e.Kind != KindCompilePass {
			continue
		}
		fmt.Fprintf(&b, "%-28s %12.0f %10.0f %10.0f %+8.0f\n",
			e.Name, e.Dur, e.A, e.B, e.B-e.A)
		totalWork += e.Dur
	}
	fmt.Fprintf(&b, "%-28s %12.0f\n", "total", totalWork)
	for _, e := range events {
		if e.Kind == KindTruncation {
			fmt.Fprintf(&b, "TRUNCATED: %.0f events lost (%s)\n", e.A, e.Name)
		}
	}
	return b.String()
}
