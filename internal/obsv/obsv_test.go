package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// sampleTrace is a small well-formed stream: main calls f twice (the
// second call tiers up), then grows memory.
func sampleTrace() []Event {
	return []Event{
		{Kind: KindCallEnter, TS: 0, Name: "main", Track: "wasm"},
		{Kind: KindCallEnter, TS: 100, Name: "f", Track: "wasm"},
		{Kind: KindCallExit, TS: 300, Name: "f", Track: "wasm"},
		{Kind: KindTierUp, TS: 350, Name: "f", Track: "wasm", A: 12},
		{Kind: KindCallEnter, TS: 400, Name: "f", Track: "wasm"},
		{Kind: KindCallExit, TS: 500, Name: "f", Track: "wasm"},
		{Kind: KindMemGrow, TS: 600, Name: "main", Track: "wasm", A: 1, B: 2},
		{Kind: KindCallExit, TS: 1000, Name: "main", Track: "wasm"},
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	for _, e := range sampleTrace() {
		c.Emit(e)
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d", c.Len())
	}
	ev := c.Events()
	if ev[0].Name != "main" || ev[3].Kind != KindTierUp {
		t.Errorf("unexpected events: %+v", ev[:4])
	}
	// The snapshot is a copy.
	ev[0].Name = "mutated"
	if c.Events()[0].Name != "main" {
		t.Error("Events() aliases internal buffer")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("reset did not clear")
	}
}

func TestCollectorLimit(t *testing.T) {
	c := Collector{Limit: 3}
	for _, e := range sampleTrace() {
		c.Emit(e)
	}
	if c.Len() != 3 || c.Dropped() != 5 {
		t.Errorf("len=%d dropped=%d", c.Len(), c.Dropped())
	}
}

func TestWithTrack(t *testing.T) {
	var c Collector
	tr := WithTrack(&c, "chrome-desktop")
	tr.Emit(Event{Kind: KindTierUp, Track: "wasm", Name: "f"})
	tr.Emit(Event{Kind: KindCellStart, Name: "cell"})
	ev := c.Events()
	if ev[0].Track != "chrome-desktop/wasm" || ev[1].Track != "chrome-desktop" {
		t.Errorf("tracks: %q %q", ev[0].Track, ev[1].Track)
	}
	if WithTrack(nil, "x") != nil {
		t.Error("WithTrack(nil) must stay nil for the disabled fast path")
	}
}

func TestFlame(t *testing.T) {
	trees := Flame(sampleTrace())
	roots := trees["wasm"]
	if len(roots) != 1 || roots[0].Name != "main" {
		t.Fatalf("roots: %+v", roots)
	}
	main := roots[0]
	if main.Calls != 1 || main.TotalCycles != 1000 {
		t.Errorf("main: %+v", main)
	}
	// Two f calls merged into one child: total 200+100, self the same.
	if len(main.Children) != 1 {
		t.Fatalf("children: %+v", main.Children)
	}
	f := main.Children[0]
	if f.Name != "f" || f.Calls != 2 || f.TotalCycles != 300 || f.SelfCycles != 300 {
		t.Errorf("f: %+v", f)
	}
	if main.SelfCycles != 700 {
		t.Errorf("main self = %v", main.SelfCycles)
	}
}

func TestFlameUnbalancedTail(t *testing.T) {
	// A trap leaves calls open; they are closed at the last timestamp.
	trees := Flame([]Event{
		{Kind: KindCallEnter, TS: 0, Name: "main", Track: "wasm"},
		{Kind: KindCallEnter, TS: 50, Name: "f", Track: "wasm"},
	})
	main := trees["wasm"][0]
	if main.TotalCycles != 50 || main.Children[0].TotalCycles != 0 {
		t.Errorf("tail closing: %+v", main)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	profiles := []FuncProfile{
		{Name: "main", Track: "wasm", Calls: 1, SelfCycles: 700, TotalCycles: 1000,
			Classes: []ClassCount{{Class: "addsub", Count: 42}}},
		{Name: "f", Track: "wasm", Calls: 2, SelfCycles: 300, TotalCycles: 300},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleTrace(), profiles); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var phases []string
	for _, e := range doc.TraceEvents {
		phases = append(phases, e.Ph)
	}
	joined := strings.Join(phases, "")
	for _, want := range []string{"M", "B", "E", "i", "X"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing phase %q in %v", want, phases)
		}
	}
	if !strings.Contains(buf.String(), `"tier-up f"`) {
		t.Error("tier-up instant missing")
	}
	if !strings.Contains(buf.String(), `"n_addsub":42`) {
		t.Error("profile class args missing")
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	profiles := []FuncProfile{{Name: "main", Calls: 1, SelfCycles: 1, TotalCycles: 1}}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, sampleTrace(), profiles); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, sampleTrace(), profiles); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("exporter is not byte-deterministic")
	}
}

func TestWriteFolded(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFolded(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "wasm;main 700\nwasm;main;f 300\n"
	if got != want {
		t.Errorf("folded:\n%s\nwant:\n%s", got, want)
	}
}

func TestProfileTable(t *testing.T) {
	s := ProfileTable([]FuncProfile{
		{Name: "cold", Calls: 1, SelfCycles: 10, TotalCycles: 10},
		{Name: "hot", Calls: 5, SelfCycles: 90, TotalCycles: 100,
			Classes: []ClassCount{{Class: "mul", Count: 7}, {Class: "load", Count: 30}}},
	})
	hotIdx := strings.Index(s, "hot")
	coldIdx := strings.Index(s, "cold")
	if hotIdx < 0 || coldIdx < 0 || hotIdx > coldIdx {
		t.Errorf("expected hottest-first ordering:\n%s", s)
	}
	if !strings.Contains(s, "load:30") {
		t.Errorf("class breakdown missing:\n%s", s)
	}
}

func TestCompilePassTable(t *testing.T) {
	s := CompilePassTable([]Event{
		{Kind: KindCompilePass, Name: "constfold", Dur: 120, A: 120, B: 100},
		{Kind: KindCompilePass, Name: "dce", Dur: 100, A: 100, B: 80},
		{Kind: KindTierUp, Name: "ignored"},
	})
	if !strings.Contains(s, "constfold") || !strings.Contains(s, "dce") {
		t.Errorf("passes missing:\n%s", s)
	}
	if !strings.Contains(s, "-20") {
		t.Errorf("delta missing:\n%s", s)
	}
}

func TestRunMetrics(t *testing.T) {
	m := &RunMetrics{
		Workers: 2,
		Span:    100 * time.Millisecond,
		Cells: []CellMetric{
			{Label: "a", Wall: 80 * time.Millisecond, Compile: 20 * time.Millisecond, Measure: 60 * time.Millisecond},
			{Label: "b", Wall: 120 * time.Millisecond, Compile: 30 * time.Millisecond, Measure: 90 * time.Millisecond, CacheHit: true},
		},
	}
	if u := m.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Errorf("utilization = %v", u)
	}
	if cs := m.CompileShare(); math.Abs(cs-0.25) > 1e-9 {
		t.Errorf("compile share = %v", cs)
	}
	out := m.Render()
	if !strings.Contains(out, "utilization: 100.0%") || !strings.Contains(out, "workers: 2") {
		t.Errorf("render:\n%s", out)
	}
	// The cache column marks hit cells; the summary line only appears for
	// runs where the cache was actually on.
	if !strings.Contains(out, "hit") || strings.Contains(out, "compile cache:") {
		t.Errorf("cache rendering:\n%s", out)
	}
	m.CacheEnabled = true
	m.CacheHits, m.CacheMisses, m.CacheDedupWaits = 1, 1, 0
	if out := m.Render(); !strings.Contains(out, "compile cache: 1 hits  1 misses  0 dedup-waits") {
		t.Errorf("cache summary line:\n%s", out)
	}
}

func TestFilterKinds(t *testing.T) {
	ev := FilterKinds(sampleTrace(), KindTierUp, KindMemGrow)
	if len(ev) != 2 || ev[0].Kind != KindTierUp || ev[1].Kind != KindMemGrow {
		t.Errorf("filtered: %+v", ev)
	}
}
