package obsv

import (
	"bytes"
	"strings"
	"testing"
)

// TestEventsWithTruncation checks the keep-oldest drop semantics are
// surfaced, not silent: a limited collector's export carries an explicit
// marker where the record stops.
func TestEventsWithTruncation(t *testing.T) {
	c := &Collector{Limit: 2}
	for i := 0; i < 5; i++ {
		c.Emit(Event{Kind: KindCallEnter, TS: float64(i * 10), Name: "f"})
	}
	if c.Len() != 2 || c.Dropped() != 3 {
		t.Fatalf("Len=%d Dropped=%d, want 2/3", c.Len(), c.Dropped())
	}
	// Events() is the raw view, unchanged.
	if got := c.Events(); len(got) != 2 {
		t.Fatalf("Events() = %d events, want 2", len(got))
	}
	got := c.EventsWithTruncation()
	if len(got) != 3 {
		t.Fatalf("EventsWithTruncation = %d events, want 2 + marker", len(got))
	}
	mark := got[2]
	if mark.Kind != KindTruncation || mark.A != 3 {
		t.Fatalf("marker = %+v, want KindTruncation with A=3", mark)
	}
	// Keep-oldest: the marker sits at the END, timestamped at the last
	// stored event (the loss happened after it).
	if mark.TS != got[1].TS {
		t.Fatalf("marker TS = %v, want %v (end of stored record)", mark.TS, got[1].TS)
	}

	// Nothing dropped → identical to Events.
	c2 := &Collector{}
	c2.Emit(Event{Kind: KindCallEnter, TS: 1})
	if got := c2.EventsWithTruncation(); len(got) != 1 {
		t.Fatalf("unlimited collector grew a marker: %+v", got)
	}
}

// TestTruncationInExporters checks every exporter renders the marker.
func TestTruncationInExporters(t *testing.T) {
	events := []Event{
		{Kind: KindCallEnter, TS: 0, Name: "main", Track: "wasm"},
		{Kind: KindCallExit, TS: 100, Name: "main", Track: "wasm"},
		TruncationEvent(7, "collector limit reached: newest events dropped", 100),
	}

	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, events, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), "TRUNCATED: 7 events lost") {
		t.Fatalf("Chrome trace missing truncation instant:\n%s", chrome.String())
	}
	if !strings.Contains(chrome.String(), `"events_lost":7`) {
		t.Fatalf("Chrome trace missing events_lost arg:\n%s", chrome.String())
	}

	var folded bytes.Buffer
	if err := WriteFolded(&folded, events); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(folded.String(), "[TRUNCATED:") {
		t.Fatalf("folded output missing truncation line:\n%s", folded.String())
	}

	passes := []Event{
		{Kind: KindCompilePass, TS: 0, Dur: 10, Name: "parse", Track: "compile"},
		TruncationEvent(3, "collector limit reached", 10),
	}
	table := CompilePassTable(passes)
	if !strings.Contains(table, "TRUNCATED: 3 events lost") {
		t.Fatalf("pass table missing truncation note:\n%s", table)
	}
}

// TestMulti checks the tracer tee: fan-out to all targets, nil filtering,
// and unwrapping down to nil/single.
func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing must be nil (preserves the disabled fast path)")
	}
	a := &Collector{}
	if got := Multi(nil, a, nil); got != Tracer(a) {
		t.Fatalf("Multi with one live tracer = %T, want the tracer itself", got)
	}
	b := &Collector{}
	m := Multi(a, b)
	m.Emit(Event{Kind: KindCallEnter, TS: 1, Name: "x"})
	m.Emit(Event{Kind: KindCallExit, TS: 2, Name: "x"})
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatalf("tee delivered %d/%d events, want 2/2", a.Len(), b.Len())
	}
}
